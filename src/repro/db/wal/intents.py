"""The cross-shard intent journal: 2PC durability for the sharded router.

One file per sharded deployment (``xshard-intents.log`` in the *parent*
durability directory, next to the ``shard-NN/`` subdirectories) holding
CRC-framed JSON records — the same length + CRC32 framing the WAL batch
records use (:func:`repro.db.wal.records.encode_frame`), behind a 4-byte
``LXI1`` magic.  Three record types:

- ``intent`` — written *before* any participant shard flushes a
  cross-shard apply round.  Carries everything needed to re-drive or undo
  the round after a crash: the round id, the deployment's shard count, the
  per-transaction apply calls (user, original program name, fully resolved
  apply parameters including the ``__wN`` final values, and the write
  shards), and per-participant watermarks — the last journaled batch
  sequence and verified digest of every involved shard at the moment the
  intent was logged;
- ``commit`` — every participant accepted and durably journaled the apply
  batch;
- ``abort`` — the round was compensated (participants rolled back to
  their watermarks); carries the reason.

An intent with no matching resolution is **in doubt**:
:meth:`repro.core.sharding.ShardedSession.recover` scans this journal
before replaying the shards and resolves the round — roll forward when the
apply survived somewhere it cannot be undone, roll back otherwise — then
appends the missing resolution so a second recovery is a no-op.

Like the WAL, the scan never raises on damaged bytes: a torn or corrupt
tail is truncated away (``repair=True``) and reported, never an exception.
A record the coordinator crashed while writing is simply a round that
never started — no shard can hold its writes, because the durable intent
strictly precedes the fan-out.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

from ...errors import DurabilityError, WalError
from ...obs.metrics import MetricsRegistry, get_metrics
from ..fsio import OS_FILESYSTEM, FileSystem
from .records import STATUS_CLEAN, decode_frames, encode_frame
from .segments import _fsync_directory

__all__ = [
    "INTENT_JOURNAL_NAME",
    "IntentJournal",
    "IntentRecord",
    "IntentScanReport",
    "IntentTxn",
]

INTENT_JOURNAL_NAME = "xshard-intents.log"
JOURNAL_MAGIC = b"LXI1"  # Litmus cross(X)-shard Intents v1

STATE_PENDING = "pending"
STATE_COMMITTED = "committed"
STATE_ABORTED = "aborted"


@dataclass(frozen=True)
class IntentTxn:
    """One cross-shard transaction's journaled apply call."""

    txn_id: int
    user: str
    program: str  # the *original* program name; @apply is re-derived
    params: dict  # fully resolved apply parameters (incl. __wN values)
    shards: tuple[int, ...]  # the shards this txn's writes land on


@dataclass(frozen=True)
class IntentRecord:
    """One cross-shard round: intent plus (maybe) its resolution."""

    round_id: int
    num_shards: int
    txns: tuple[IntentTxn, ...]
    participants: tuple[int, ...]
    pre_seqs: dict  # shard -> last journaled batch seq at intent time
    pre_digests: dict  # shard -> verified digest at intent time
    state: str = STATE_PENDING
    reason: str = ""


@dataclass
class IntentScanReport:
    """What a journal scan found (and repaired)."""

    records: int = 0
    pending: int = 0
    status: str = STATUS_CLEAN
    truncated_bytes: int = 0
    details: list[str] = field(default_factory=list)


def _encode_intent(record: IntentRecord) -> bytes:
    return json.dumps(
        {
            "type": "intent",
            "round": record.round_id,
            "num_shards": record.num_shards,
            "participants": list(record.participants),
            "txns": [
                {
                    "txn_id": txn.txn_id,
                    "user": txn.user,
                    "program": txn.program,
                    "params": dict(txn.params),
                    "shards": list(txn.shards),
                }
                for txn in record.txns
            ],
            "pre_seqs": {str(k): v for k, v in record.pre_seqs.items()},
            "pre_digests": {
                str(k): hex(v) for k, v in record.pre_digests.items()
            },
        },
        sort_keys=True,
    ).encode("utf-8")


def _encode_resolution(round_id: int, state: str, reason: str) -> bytes:
    return json.dumps(
        {"type": state, "round": round_id, "reason": reason}, sort_keys=True
    ).encode("utf-8")


def _decode_payload(payload: bytes):
    """One journal payload as a dict; None on structural damage."""
    try:
        body = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return None
    if not isinstance(body, dict) or "type" not in body or "round" not in body:
        return None
    return body


def _intent_from_body(body: dict) -> IntentRecord | None:
    try:
        return IntentRecord(
            round_id=int(body["round"]),
            num_shards=int(body["num_shards"]),
            participants=tuple(int(s) for s in body["participants"]),
            txns=tuple(
                IntentTxn(
                    txn_id=int(t["txn_id"]),
                    user=str(t["user"]),
                    program=str(t["program"]),
                    params={str(k): int(v) for k, v in t["params"].items()},
                    shards=tuple(int(s) for s in t["shards"]),
                )
                for t in body["txns"]
            ),
            pre_seqs={int(k): int(v) for k, v in body["pre_seqs"].items()},
            pre_digests={
                int(k): int(v, 16) for k, v in body["pre_digests"].items()
            },
        )
    except (KeyError, TypeError, ValueError):
        return None


class IntentJournal:
    """Appender + scanner over one deployment's cross-shard intent log."""

    def __init__(
        self,
        path: str,
        *,
        num_shards: int,
        fsync: bool = True,
        registry: MetricsRegistry | None = None,
        fs: FileSystem | None = None,
    ):
        if num_shards < 1:
            raise WalError("an intent journal needs a positive shard count")
        self.path = path
        self.num_shards = num_shards
        self.fsync = fsync
        self.registry = registry if registry is not None else get_metrics()
        self.fs = fs if fs is not None else OS_FILESYSTEM
        self._poisoned: DurabilityError | None = None
        # Reopening after a crash: truncate any torn/corrupt tail first so
        # appends never land after damaged bytes, then continue the round
        # id sequence past everything already journaled.
        records, _report = self.scan(path, repair=True, fs=self.fs)
        self.next_round = max((r.round_id for r in records), default=-1) + 1
        self._pending: set[int] = {
            r.round_id for r in records if r.state == STATE_PENDING
        }
        fresh = not self.fs.exists(path)
        self._file = self.fs.open(path, "ab")
        if fresh:
            self._file.write(JOURNAL_MAGIC)
            self._flush()
            _fsync_directory(os.path.dirname(path) or ".", self.fs)

    # -- appending ---------------------------------------------------------------

    def begin_round(self) -> int:
        """Allocate the next round id (monotonic across restarts)."""
        round_id = self.next_round
        self.next_round += 1
        return round_id

    def log_intent(
        self,
        round_id: int,
        txns: tuple[IntentTxn, ...],
        participants: tuple[int, ...],
        pre_seqs: dict,
        pre_digests: dict,
    ) -> IntentRecord:
        """Durably record a round's intent *before* any shard flush."""
        record = IntentRecord(
            round_id=round_id,
            num_shards=self.num_shards,
            txns=txns,
            participants=tuple(sorted(participants)),
            pre_seqs=dict(pre_seqs),
            pre_digests=dict(pre_digests),
        )
        self._append(_encode_intent(record))
        self._pending.add(round_id)
        self.registry.counter("xshard.intents").inc()
        return record

    def log_resolution(self, round_id: int, state: str, reason: str = "") -> None:
        """Mark a round committed or aborted; idempotent per round."""
        if state not in (STATE_COMMITTED, STATE_ABORTED):
            raise WalError(f"unknown intent resolution state {state!r}")
        self._append(
            _encode_resolution(
                round_id,
                "commit" if state == STATE_COMMITTED else "abort",
                reason,
            )
        )
        self._pending.discard(round_id)

    @property
    def pending_rounds(self) -> tuple[int, ...]:
        return tuple(sorted(self._pending))

    def close(self) -> None:
        if self._file is not None:
            self._flush()
            self._file.close()
            self._file = None

    def _append(self, payload: bytes) -> None:
        if self._poisoned is not None:
            raise DurabilityError(
                f"intent journal is poisoned by an earlier durability "
                f"failure: {self._poisoned}",
                op=self._poisoned.op,
                path=self.path,
            )
        if self._file is None:
            raise WalError("intent journal is closed")
        self._file.write(encode_frame(payload))
        self._flush()

    def _flush(self) -> None:
        self._file.flush()
        if self.fsync:
            try:
                self._file.fsync()
            except OSError as exc:
                # fsyncgate, journal edition: the unsynced tail can no
                # longer be trusted.  Poison the journal — the coordinator
                # must abandon the deployment and recover, which truncates
                # the untrusted tail and re-resolves any in-doubt round.
                self.registry.counter("storage.fsync_failures").inc()
                error = DurabilityError(
                    f"fsync failed on intent journal {self.path}: {exc}",
                    op="fsync",
                    path=self.path,
                )
                self._poisoned = error
                try:
                    self._file.close()
                except OSError:  # pragma: no cover - close errors are moot
                    pass
                self._file = None
                raise error from exc

    # -- scanning ----------------------------------------------------------------

    @staticmethod
    def scan(
        path: str, repair: bool = True, fs: FileSystem | None = None
    ) -> tuple[list[IntentRecord], IntentScanReport]:
        """Read every intact round back, newest resolution wins.

        Returns the rounds in intent order with their resolved states; a
        torn or corrupt tail ends the scan and (with ``repair=True``) is
        physically truncated away, mirroring :func:`scan_wal`.  A
        resolution whose intent was lost with the damaged tail is ignored.
        """
        fs = fs if fs is not None else OS_FILESYSTEM
        report = IntentScanReport()
        try:
            data = fs.read_bytes(path)
        except FileNotFoundError:
            return [], report
        if data[: len(JOURNAL_MAGIC)] != JOURNAL_MAGIC:
            # A foreign or mangled header: nothing is trustworthy.
            report.status = "corrupt"
            report.truncated_bytes = len(data)
            report.details.append("journal magic missing; discarded entirely")
            if repair:
                fs.unlink(path)
            return [], report
        frames, intact, status = decode_frames(data, offset=len(JOURNAL_MAGIC))
        rounds: dict[int, IntentRecord] = {}
        for frame_offset, payload in frames:
            body = _decode_payload(payload)
            if body is None:
                status = "corrupt"
                intact = frame_offset
                break
            round_id = int(body["round"])
            if body["type"] == "intent":
                record = _intent_from_body(body)
                if record is None:
                    status = "corrupt"
                    intact = frame_offset
                    break
                rounds[round_id] = record
            elif body["type"] in ("commit", "abort"):
                existing = rounds.get(round_id)
                if existing is not None:
                    state = (
                        STATE_COMMITTED
                        if body["type"] == "commit"
                        else STATE_ABORTED
                    )
                    rounds[round_id] = IntentRecord(
                        round_id=existing.round_id,
                        num_shards=existing.num_shards,
                        txns=existing.txns,
                        participants=existing.participants,
                        pre_seqs=existing.pre_seqs,
                        pre_digests=existing.pre_digests,
                        state=state,
                        reason=str(body.get("reason", "")),
                    )
            else:
                status = "corrupt"
                intact = frame_offset
                break
        report.status = status
        if status != STATUS_CLEAN:
            report.truncated_bytes = len(data) - intact
            report.details.append(
                f"{os.path.basename(path)}: {status} tail truncated at byte "
                f"{intact} (was {len(data)})"
            )
            if repair:
                fs.truncate(path, intact)
                _fsync_directory(os.path.dirname(path) or ".", fs)
        records = [rounds[k] for k in sorted(rounds)]
        report.records = len(records)
        report.pending = sum(1 for r in records if r.state == STATE_PENDING)
        return records, report
