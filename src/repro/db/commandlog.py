"""Command logging of transaction batches (paper Section 4, component 1a).

"Just like a DBMS could support data logging and command logging, the
traces could be as small as a few bytes indicating the transaction order
and their inputs (as in command logging)."

Because stored procedures are deterministic and write targets depend only
on parameters, a batch is fully determined by ``(program name, params)`` in
order — a command log.  :func:`encode_batch` packs a batch compactly;
:func:`replay` re-executes a log against a database, reproducing the exact
final state (tested against live execution).  This is both the paper's
logging observation made concrete and a practical recovery path for the
server.
"""

from __future__ import annotations

import json
import zlib
from typing import Mapping, Sequence

from ..errors import ReproError
from ..vc.program import Program
from .database import Database
from .txn import Transaction

__all__ = ["encode_batch", "decode_batch", "replay"]

_MAGIC = b"LCL1"  # Litmus Command Log v1


def encode_batch(txns: Sequence[Transaction]) -> bytes:
    """Serialize a batch as a compressed command log."""
    payload = json.dumps(
        [
            {"id": txn.txn_id, "p": txn.program.name, "a": txn.params}
            for txn in txns
        ],
        separators=(",", ":"),
    ).encode()
    return _MAGIC + zlib.compress(payload, level=6)


def decode_batch(
    log: bytes, programs: Mapping[str, Program]
) -> list[Transaction]:
    """Reconstruct the batch; *programs* registers the known templates."""
    if log[:4] != _MAGIC:
        raise ReproError("not a Litmus command log")
    entries = json.loads(zlib.decompress(log[4:]))
    txns: list[Transaction] = []
    for entry in entries:
        name = entry["p"]
        if name not in programs:
            raise ReproError(f"unknown stored procedure {name!r} in command log")
        txns.append(
            Transaction(
                txn_id=entry["id"],
                program=programs[name],
                params=dict(entry["a"]),
            )
        )
    return txns


def replay(
    log: bytes,
    programs: Mapping[str, Program],
    initial: Mapping[tuple, int] | None = None,
    cc: str = "dr",
    processing_batch_size: int = 1024,
) -> Database:
    """Re-execute a command log from *initial*; returns the database.

    Determinism of the CC algorithm guarantees the replayed state equals
    the original run's — the property making command logging sufficient.
    """
    db = Database(
        initial=initial, cc=cc, processing_batch_size=processing_batch_size
    )
    db.run(decode_batch(log, programs))
    return db
