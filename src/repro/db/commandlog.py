"""Command logging of transaction batches (paper Section 4, component 1a).

"Just like a DBMS could support data logging and command logging, the
traces could be as small as a few bytes indicating the transaction order
and their inputs (as in command logging)."

Because stored procedures are deterministic and write targets depend only
on parameters, a batch is fully determined by ``(program name, params)`` in
order — a command log.  :func:`encode_batch` packs a batch compactly;
:func:`replay` re-executes a log against a database, reproducing the exact
final state (tested against live execution).  This is both the paper's
logging observation made concrete and a practical recovery path for the
server.
"""

from __future__ import annotations

import json
import zlib
from typing import Mapping, Sequence

from ..errors import CommandLogError
from ..vc.program import Program
from .database import Database
from .txn import Transaction

__all__ = ["encode_batch", "decode_batch", "replay"]

_MAGIC = b"LCL1"  # Litmus Command Log v1


def encode_batch(txns: Sequence[Transaction]) -> bytes:
    """Serialize a batch as a compressed command log."""
    payload = json.dumps(
        [
            {"id": txn.txn_id, "p": txn.program.name, "a": txn.params}
            for txn in txns
        ],
        separators=(",", ":"),
    ).encode()
    return _MAGIC + zlib.compress(payload, level=6)


def decode_batch(
    log: bytes, programs: Mapping[str, Program]
) -> list[Transaction]:
    """Reconstruct the batch; *programs* registers the known templates.

    Raises :class:`~repro.errors.CommandLogError` on any malformed input —
    a truncated payload, corrupt compression, broken JSON, or entries with
    missing fields.  The log is a recovery-critical artifact (``resync()``
    replays it), so the codec's internal exceptions (``zlib.error``,
    ``KeyError``, ``json.JSONDecodeError``) must not leak raw.
    """
    if log[:4] != _MAGIC:
        raise CommandLogError("not a Litmus command log")
    try:
        entries = json.loads(zlib.decompress(log[4:]))
    except zlib.error as exc:
        raise CommandLogError(f"corrupt command log payload: {exc}") from exc
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise CommandLogError(f"command log is not valid JSON: {exc}") from exc
    if not isinstance(entries, list):
        raise CommandLogError("command log payload must be a list of entries")
    txns: list[Transaction] = []
    for index, entry in enumerate(entries):
        if not isinstance(entry, dict):
            raise CommandLogError(f"command log entry {index} is not an object")
        try:
            txn_id, name, params = entry["id"], entry["p"], entry["a"]
        except KeyError as exc:
            raise CommandLogError(
                f"command log entry {index} is missing field {exc.args[0]!r}"
            ) from exc
        if name not in programs:
            raise CommandLogError(
                f"unknown stored procedure {name!r} in command log"
            )
        if not isinstance(params, dict):
            raise CommandLogError(
                f"command log entry {index} has malformed parameters"
            )
        txns.append(
            Transaction(txn_id=txn_id, program=programs[name], params=dict(params))
        )
    return txns


def replay(
    log: bytes,
    programs: Mapping[str, Program],
    initial: Mapping[tuple, int] | None = None,
    cc: str = "dr",
    processing_batch_size: int = 1024,
) -> Database:
    """Re-execute a command log from *initial*; returns the database.

    Determinism of the CC algorithm guarantees the replayed state equals
    the original run's — the property making command logging sufficient.
    """
    db = Database(
        initial=initial, cc=cc, processing_batch_size=processing_batch_size
    )
    db.run(decode_batch(log, programs))
    return db
