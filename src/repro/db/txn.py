"""Transactions and their results.

A :class:`Transaction` pairs a stored-procedure template
(:class:`~repro.vc.program.Program`) with concrete parameters.  Its
read/write key sets are derivable from parameters alone (the paper's
deterministic-writeset assumption), which is what allows both deterministic
reservation on the server and local interleaving reconstruction on the
client.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..vc.program import Program

__all__ = ["Transaction", "TxnResult"]


@dataclass(frozen=True)
class Transaction:
    """One invocation of a stored procedure."""

    txn_id: int
    program: Program
    params: dict[str, int] = field(default_factory=dict)

    @property
    def priority(self) -> int:
        """Deterministic unique priority (smaller = higher), per Algorithm 5."""
        return self.txn_id

    def read_keys(self) -> list[tuple]:
        return self.program.read_keys(self.params)

    def write_keys(self) -> list[tuple]:
        return self.program.write_keys(self.params)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Transaction({self.txn_id}, {self.program.name})"


@dataclass(frozen=True)
class TxnResult:
    """The observable effect of one executed transaction."""

    txn_id: int
    committed: bool
    outputs: tuple[int, ...] = ()
    read_set: tuple[tuple[tuple, int], ...] = ()  # (key, value observed)
    write_set: tuple[tuple[tuple, int], ...] = ()  # (key, value written)
    aborts: int = 0  # retries before the final outcome (contention metric)
