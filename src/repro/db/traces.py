"""Runtime traces: the transaction dependency information of Algorithm 4.

The normal DBMS records a partial order over transactions while executing
them (``LastWriter -> reader`` and ``LastWriter/LastReader -> writer``
edges).  The transaction wrapper topologically sorts this graph to fix the
serial order the circuit replays (Algorithm 3), and the prover uses it as
interleaving hints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import networkx as nx

from ..errors import ConcurrencyError

__all__ = ["DependencyEdge", "RuntimeTraces"]


@dataclass(frozen=True)
class DependencyEdge:
    """A partial-order constraint: *src* must serialize before *dst*.

    ``kind`` is one of ``"wr"`` (read-after-write), ``"ww"``
    (write-after-write), ``"rw"`` (write-after-read / anti-dependency).
    ``src`` may be ``None`` for "initial state" pseudo-edges, which carry no
    ordering constraint and are dropped from the graph.
    """

    src: int | None
    dst: int
    kind: str
    key: tuple = ()


@dataclass
class RuntimeTraces:
    """Edges plus (for batch CC) the composition of non-conflicting batches."""

    edges: list[DependencyEdge] = field(default_factory=list)
    batches: list[tuple[int, ...]] = field(default_factory=list)

    def add_edge(self, src: int | None, dst: int, kind: str, key: tuple = ()) -> None:
        if src is not None and src != dst:
            self.edges.append(DependencyEdge(src=src, dst=dst, kind=kind, key=key))

    def add_batch(self, txn_ids: Iterable[int]) -> None:
        self.batches.append(tuple(txn_ids))

    def dependency_graph(self, txn_ids: Iterable[int]) -> "nx.DiGraph":
        graph = nx.DiGraph()
        graph.add_nodes_from(txn_ids)
        for edge in self.edges:
            if edge.src is not None and graph.has_node(edge.src) and graph.has_node(edge.dst):
                graph.add_edge(edge.src, edge.dst)
        return graph

    def topological_order(self, txn_ids: Iterable[int]) -> list[int]:
        """A serial order satisfying every recorded dependency.

        Ties are broken by transaction id so the order is deterministic —
        the client must be able to reproduce it (Section 7.1).
        """
        graph = self.dependency_graph(list(txn_ids))
        try:
            return list(nx.lexicographical_topological_sort(graph))
        except nx.NetworkXUnfeasible as exc:
            raise ConcurrencyError(
                "dependency graph is cyclic: execution was not serializable"
            ) from exc

    def is_acyclic(self, txn_ids: Iterable[int]) -> bool:
        return nx.is_directed_acyclic_graph(self.dependency_graph(list(txn_ids)))
