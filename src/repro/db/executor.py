"""Common execution structures shared by both CC algorithms.

An executor turns a list of transactions into an :class:`ExecutionReport`:
per-transaction results, runtime traces (dependency edges / batches), and a
*schedule* — the sequence of :class:`ScheduleUnit` the verifiable layer
replays.  A unit is the granularity at which memory-integrity proofs are
generated and aggregated:

- under 2PL every unit holds exactly one transaction (per-access proofs);
- under deterministic reservation a unit is one non-conflicting batch, so a
  single aggregated lookup proof and a single digest update cover the whole
  batch — the co-design win of Section 7.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .traces import RuntimeTraces
from .txn import TxnResult

__all__ = ["ScheduleUnit", "ExecutionReport", "ExecutionStats"]


@dataclass(frozen=True)
class ScheduleUnit:
    """A group of transactions proven together.

    ``reads`` holds, per key, the value observed at unit start (the value
    the aggregated MemCheck must authenticate); ``writes`` holds the final
    value per key at unit end (the aggregated MemUpdate).  Within a unit the
    transactions are non-conflicting, so "at unit start" and "per
    transaction" coincide.
    """

    txn_ids: tuple[int, ...]
    reads: tuple[tuple[tuple, int], ...]
    writes: tuple[tuple[tuple, int], ...]

    @property
    def read_keys(self) -> tuple[tuple, ...]:
        return tuple(key for key, _value in self.reads)

    @property
    def write_keys(self) -> tuple[tuple, ...]:
        return tuple(key for key, _value in self.writes)


@dataclass
class ExecutionStats:
    """Counters the cost model and the contention experiments consume."""

    num_txns: int = 0
    committed: int = 0
    aborted_retries: int = 0  # CC-level restarts (lock aborts / lost reservations)
    rounds: int = 0  # DR rounds (== 1 per unit); 2PL: number of txns
    reads: int = 0
    writes: int = 0
    batch_sizes: list[int] = field(default_factory=list)

    @property
    def mean_batch_size(self) -> float:
        return sum(self.batch_sizes) / len(self.batch_sizes) if self.batch_sizes else 0.0


@dataclass
class ExecutionReport:
    """Everything the verifiable layer needs about one execution."""

    results: dict[int, TxnResult]
    traces: RuntimeTraces
    schedule: list[ScheduleUnit]
    stats: ExecutionStats

    def committed_ids(self) -> list[int]:
        return [txn_id for txn_id, result in self.results.items() if result.committed]
