"""In-memory key-value storage.

Keys are canonical tuples, values are integers.  Absent keys read as the
*agreed initial value* 0 — the same convention the paper's authenticated
dictionary uses ("the server can prove that the requested key was not
previously accessed, and provide an initial value, say 0").
"""

from __future__ import annotations

from typing import Iterator, Mapping

__all__ = ["KVStore", "INITIAL_VALUE"]

INITIAL_VALUE = 0


class KVStore:
    """A dictionary with database semantics (default reads, snapshots)."""

    def __init__(self, initial: Mapping[tuple, int] | None = None):
        self._data: dict[tuple, int] = dict(initial) if initial else {}

    def get(self, key: tuple) -> int:
        return self._data.get(key, INITIAL_VALUE)

    def put(self, key: tuple, value: int) -> None:
        self._data[key] = value

    def __contains__(self, key: tuple) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def items(self) -> Iterator[tuple[tuple, int]]:
        return iter(self._data.items())

    def snapshot(self) -> dict[tuple, int]:
        return dict(self._data)

    def load(self, contents: Mapping[tuple, int]) -> None:
        self._data.update(contents)

    def restore(self, contents: Mapping[tuple, int]) -> None:
        """Replace the whole store with *contents* (rollback semantics).

        Unlike :meth:`load`, keys absent from *contents* are removed —
        restoring a snapshot must undo inserts, not merge over them.
        """
        self._data = dict(contents)
