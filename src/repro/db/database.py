"""The Database facade: storage plus a choice of CC executor."""

from __future__ import annotations

from typing import Mapping, Sequence

from ..errors import ConcurrencyError
from ..obs.metrics import get_metrics
from .detreserve import DeterministicReservationExecutor
from .executor import ExecutionReport
from .kvstore import KVStore
from .twopl import TwoPhaseLockingExecutor
from .txn import Transaction

__all__ = ["Database"]

_COMMITTED = get_metrics().counter("db.committed")
_ABORT_RETRIES = get_metrics().counter("db.aborted_retries")
_RUNS = get_metrics().counter("db.runs")


class Database:
    """An in-memory transactional database with pluggable CC.

    ``cc`` selects the concurrency-control algorithm: ``"2pl"`` (Section 6
    baseline) or ``"dr"`` (deterministic reservation, Section 7.1).
    """

    def __init__(
        self,
        initial: Mapping[tuple, int] | None = None,
        cc: str = "dr",
        processing_batch_size: int = 1024,
        num_threads: int = 1,
    ):
        self.store = KVStore(initial)
        self.cc = cc
        if cc == "dr":
            self._executor = DeterministicReservationExecutor(
                self.store, processing_batch_size=processing_batch_size
            )
        elif cc == "2pl":
            self._executor = TwoPhaseLockingExecutor(self.store, num_threads=num_threads)
        else:
            raise ConcurrencyError(f"unknown concurrency control algorithm {cc!r}")

    def run(self, txns: Sequence[Transaction]) -> ExecutionReport:
        """Execute *txns* to completion and return the full report.

        Publishes the CC outcome counters (commits, CC-level retries) to
        the process-local metrics registry — the ``db.*`` rows every
        exporter and Fig 8 contention run reads.
        """
        report = self._executor.run(txns)
        _RUNS.inc()
        _COMMITTED.inc(report.stats.committed)
        _ABORT_RETRIES.inc(report.stats.aborted_retries)
        return report

    def get(self, key: tuple) -> int:
        return self.store.get(key)

    def put(self, key: tuple, value: int) -> None:
        self.store.put(key, value)

    def load(self, contents: Mapping[tuple, int]) -> None:
        self.store.load(contents)

    def snapshot(self) -> dict[tuple, int]:
        return self.store.snapshot()

    def restore(self, contents: Mapping[tuple, int]) -> None:
        """Replace the store with *contents* (see :meth:`KVStore.restore`)."""
        self.store.restore(contents)

    def __len__(self) -> int:
        return len(self.store)
