"""Deterministic reservation concurrency control (Section 7.1, Algorithm 5).

Transactions are processed in rounds over a *processing batch* of size
``m``.  Each round:

1. **Reserve** — every transaction in the batch executes against the
   snapshot at round start (with a private write buffer), collecting its
   read and write sets; each written key is reserved by the highest-priority
   (smallest-id) writer, ``R[x] = min(R[x], T.rho)``.
2. **Commit** — a transaction commits iff every key it read or wrote is
   either unreserved or reserved by itself.  (Algorithm 5's pseudo-code
   prints the comparison as ``Ti.rho < R[x] -> no``; the accompanying text —
   "if any other transaction overwrites the reservation" — fixes the intended
   predicate, which is what we implement.)

The committed set of a round is a **non-conflicting batch**: its members
share no key at all, so they serialize in *any* order, read consistently
from the round-start snapshot, and — crucially for Litmus — their
memory-integrity proofs aggregate into a single witness (Section 7.1(a)).
Losers retry in the next round.  The whole schedule is a deterministic
function of (transaction list, m), which is why the client can reproduce it
locally.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..errors import ConcurrencyError
from .executor import ExecutionReport, ExecutionStats, ScheduleUnit
from .kvstore import KVStore
from .traces import RuntimeTraces
from .txn import Transaction, TxnResult

__all__ = ["DeterministicReservationExecutor"]


@dataclass
class _Attempt:
    """One transaction's reserve-phase execution (against the snapshot)."""

    txn: Transaction
    reads: tuple[tuple[tuple, int], ...]
    writes: tuple[tuple[tuple, int], ...]
    outputs: tuple[int, ...]

    def touched_keys(self) -> set[tuple]:
        return {key for key, _v in self.reads} | {key for key, _v in self.writes}


class DeterministicReservationExecutor:
    """Batch CC producing non-conflicting batches and their traces."""

    def __init__(self, store: KVStore, processing_batch_size: int = 1024):
        if processing_batch_size < 1:
            raise ConcurrencyError("processing batch size must be positive")
        self.store = store
        self.processing_batch_size = processing_batch_size

    def run(self, txns: Sequence[Transaction]) -> ExecutionReport:
        traces = RuntimeTraces()
        stats = ExecutionStats(num_txns=len(txns))
        results: dict[int, TxnResult] = {}
        schedule: list[ScheduleUnit] = []
        retry_counts: dict[int, int] = {}
        last_writer: dict[tuple, int | None] = {}

        remaining: list[Transaction] = sorted(
            txns, key=lambda t: (t.priority, t.txn_id)
        )
        while remaining:
            batch = remaining[: self.processing_batch_size]
            committed_ids = self._round(
                batch, traces, stats, results, schedule, retry_counts, last_writer
            )
            if committed_ids:
                remaining = [t for t in remaining if t.txn_id not in committed_ids]
            else:  # pragma: no cover - cannot happen: the best-priority txn wins
                raise ConcurrencyError("deterministic reservation made no progress")
        return ExecutionReport(results=results, traces=traces, schedule=schedule, stats=stats)

    def _round(
        self,
        batch: Sequence[Transaction],
        traces: RuntimeTraces,
        stats: ExecutionStats,
        results: dict[int, TxnResult],
        schedule: list[ScheduleUnit],
        retry_counts: dict[int, int],
        last_writer: dict[tuple, int | None],
    ) -> set[int]:
        stats.rounds += 1

        # -- Reserve phase: execute everyone against the round snapshot. ----
        # Reservations are keyed by (priority, txn_id), not bare priority:
        # with two equal-priority writers of the same key, a bare-priority
        # R[x] satisfies *both* commit checks and lets a write-write
        # conflict into one "non-conflicting" batch.  The txn id (unique by
        # construction) breaks ties deterministically.
        attempts: list[_Attempt] = []
        reservations: dict[tuple, tuple[int, int]] = {}  # R[x], smaller wins
        for txn in batch:
            result = txn.program.execute(txn.params, self.store.get)
            attempt = _Attempt(
                txn=txn,
                reads=result.store_reads,
                writes=result.writes,
                outputs=result.outputs,
            )
            attempts.append(attempt)
            rank = (txn.priority, txn.txn_id)
            for key, _value in attempt.writes:
                current = reservations.get(key)
                if current is None or rank < current:
                    reservations[key] = rank

        # -- Commit phase -------------------------------------------------
        # A transaction commits iff it holds the reservation on every key it
        # writes, and every key it only reads is either unreserved or
        # reserved by a *lower-priority* writer.  Allowing a high-priority
        # reader to coexist with a low-priority writer keeps the batch
        # serializable (reader-before-writer edges strictly increase in
        # priority, so no cycle can form) and guarantees progress: the
        # highest-priority transaction always wins all its checks.  With the
        # conservative "any reservation aborts me" reading of Algorithm 5's
        # pseudo-code, two transactions in a read/write embrace would abort
        # each other forever.
        committed: list[_Attempt] = []
        for attempt in attempts:
            rank = (attempt.txn.priority, attempt.txn.txn_id)
            write_keys = {key for key, _v in attempt.writes}
            wins = all(reservations.get(key) == rank for key in write_keys)
            if wins:
                for key, _value in attempt.reads:
                    if key in write_keys:
                        continue
                    holder = reservations.get(key)
                    if holder is not None and holder < rank:
                        wins = False
                        break
            if wins:
                committed.append(attempt)
            else:
                retry_counts[attempt.txn.txn_id] = retry_counts.get(attempt.txn.txn_id, 0) + 1
                stats.aborted_retries += 1

        # -- Apply the non-conflicting batch and record everything. ----------
        unit_reads: dict[tuple, int] = {}  # deduped: several txns may read a key
        unit_writes: list[tuple[tuple, int]] = []
        committed_ids: list[int] = []
        batch_writer: dict[tuple, int] = {}
        for attempt in committed:
            for key, _value in attempt.writes:
                batch_writer[key] = attempt.txn.txn_id
        for attempt in committed:
            txn = attempt.txn
            committed_ids.append(txn.txn_id)
            for key, value in attempt.reads:
                traces.add_edge(last_writer.get(key), txn.txn_id, "wr", key)
                # In-batch anti-dependency: this reader serializes before the
                # batch's (lower-priority) writer of the same key.
                writer = batch_writer.get(key)
                if writer is not None and writer != txn.txn_id:
                    traces.add_edge(txn.txn_id, writer, "rw", key)
                unit_reads[key] = value
                stats.reads += 1
            for key, value in attempt.writes:
                traces.add_edge(last_writer.get(key), txn.txn_id, "ww", key)
                unit_writes.append((key, value))
                stats.writes += 1
            results[txn.txn_id] = TxnResult(
                txn_id=txn.txn_id,
                committed=True,
                outputs=attempt.outputs,
                read_set=attempt.reads,
                write_set=attempt.writes,
                aborts=retry_counts.get(txn.txn_id, 0),
            )
        for attempt in committed:
            for key, value in attempt.writes:
                self.store.put(key, value)
                last_writer[key] = attempt.txn.txn_id
        if committed_ids:
            traces.add_batch(committed_ids)
            stats.batch_sizes.append(len(committed_ids))
            stats.committed += len(committed_ids)
            schedule.append(
                ScheduleUnit(
                    txn_ids=tuple(committed_ids),
                    reads=tuple(unit_reads.items()),
                    writes=tuple(unit_writes),
                )
            )
        return set(committed_ids)
