"""Deterministic reservation concurrency control (Section 7.1, Algorithm 5).

Transactions are processed in rounds over a *processing batch* of size
``m``.  Each round:

1. **Reserve** — every transaction in the batch executes against the
   snapshot at round start (with a private write buffer), collecting its
   read and write sets; each written key is reserved by the highest-priority
   (smallest-id) writer, ``R[x] = min(R[x], T.rho)``.
2. **Commit** — a transaction commits iff every key it read or wrote is
   either unreserved or reserved by itself.  (Algorithm 5's pseudo-code
   prints the comparison as ``Ti.rho < R[x] -> no``; the accompanying text —
   "if any other transaction overwrites the reservation" — fixes the intended
   predicate, which is what we implement.)

The committed set of a round is a **non-conflicting batch**: its members
share no key at all, so they serialize in *any* order, read consistently
from the round-start snapshot, and — crucially for Litmus — their
memory-integrity proofs aggregate into a single witness (Section 7.1(a)).
Losers retry in the next round.  The whole schedule is a deterministic
function of (transaction list, m), which is why the client can reproduce it
locally.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from ..errors import ConcurrencyError
from ..obs.metrics import MetricsRegistry, get_metrics
from .executor import ExecutionReport, ExecutionStats, ScheduleUnit
from .kvstore import KVStore
from .traces import RuntimeTraces
from .txn import Transaction, TxnResult

__all__ = [
    "CrossShardPlan",
    "CrossShardReserver",
    "DeterministicReservationExecutor",
]


@dataclass
class _Attempt:
    """One transaction's reserve-phase execution (against the snapshot)."""

    txn: Transaction
    reads: tuple[tuple[tuple, int], ...]
    writes: tuple[tuple[tuple, int], ...]
    outputs: tuple[int, ...]

    def touched_keys(self) -> set[tuple]:
        return {key for key, _v in self.reads} | {key for key, _v in self.writes}


class DeterministicReservationExecutor:
    """Batch CC producing non-conflicting batches and their traces."""

    def __init__(self, store: KVStore, processing_batch_size: int = 1024):
        if processing_batch_size < 1:
            raise ConcurrencyError("processing batch size must be positive")
        self.store = store
        self.processing_batch_size = processing_batch_size

    def run(self, txns: Sequence[Transaction]) -> ExecutionReport:
        traces = RuntimeTraces()
        stats = ExecutionStats(num_txns=len(txns))
        results: dict[int, TxnResult] = {}
        schedule: list[ScheduleUnit] = []
        retry_counts: dict[int, int] = {}
        last_writer: dict[tuple, int | None] = {}

        remaining: list[Transaction] = sorted(
            txns, key=lambda t: (t.priority, t.txn_id)
        )
        while remaining:
            batch = remaining[: self.processing_batch_size]
            committed_ids = self._round(
                batch, traces, stats, results, schedule, retry_counts, last_writer
            )
            if committed_ids:
                remaining = [t for t in remaining if t.txn_id not in committed_ids]
            else:  # pragma: no cover - cannot happen: the best-priority txn wins
                raise ConcurrencyError("deterministic reservation made no progress")
        return ExecutionReport(results=results, traces=traces, schedule=schedule, stats=stats)

    def _round(
        self,
        batch: Sequence[Transaction],
        traces: RuntimeTraces,
        stats: ExecutionStats,
        results: dict[int, TxnResult],
        schedule: list[ScheduleUnit],
        retry_counts: dict[int, int],
        last_writer: dict[tuple, int | None],
    ) -> set[int]:
        stats.rounds += 1

        # -- Reserve phase: execute everyone against the round snapshot. ----
        # Reservations are keyed by (priority, txn_id), not bare priority:
        # with two equal-priority writers of the same key, a bare-priority
        # R[x] satisfies *both* commit checks and lets a write-write
        # conflict into one "non-conflicting" batch.  The txn id (unique by
        # construction) breaks ties deterministically.
        attempts: list[_Attempt] = []
        reservations: dict[tuple, tuple[int, int]] = {}  # R[x], smaller wins
        for txn in batch:
            result = txn.program.execute(txn.params, self.store.get)
            attempt = _Attempt(
                txn=txn,
                reads=result.store_reads,
                writes=result.writes,
                outputs=result.outputs,
            )
            attempts.append(attempt)
            rank = (txn.priority, txn.txn_id)
            for key, _value in attempt.writes:
                current = reservations.get(key)
                if current is None or rank < current:
                    reservations[key] = rank

        # -- Commit phase -------------------------------------------------
        # A transaction commits iff it holds the reservation on every key it
        # writes, and every key it only reads is either unreserved or
        # reserved by a *lower-priority* writer.  Allowing a high-priority
        # reader to coexist with a low-priority writer keeps the batch
        # serializable (reader-before-writer edges strictly increase in
        # priority, so no cycle can form) and guarantees progress: the
        # highest-priority transaction always wins all its checks.  With the
        # conservative "any reservation aborts me" reading of Algorithm 5's
        # pseudo-code, two transactions in a read/write embrace would abort
        # each other forever.
        committed: list[_Attempt] = []
        for attempt in attempts:
            rank = (attempt.txn.priority, attempt.txn.txn_id)
            write_keys = {key for key, _v in attempt.writes}
            wins = all(reservations.get(key) == rank for key in write_keys)
            if wins:
                for key, _value in attempt.reads:
                    if key in write_keys:
                        continue
                    holder = reservations.get(key)
                    if holder is not None and holder < rank:
                        wins = False
                        break
            if wins:
                committed.append(attempt)
            else:
                retry_counts[attempt.txn.txn_id] = retry_counts.get(attempt.txn.txn_id, 0) + 1
                stats.aborted_retries += 1

        # -- Apply the non-conflicting batch and record everything. ----------
        unit_reads: dict[tuple, int] = {}  # deduped: several txns may read a key
        unit_writes: list[tuple[tuple, int]] = []
        committed_ids: list[int] = []
        batch_writer: dict[tuple, int] = {}
        for attempt in committed:
            for key, _value in attempt.writes:
                batch_writer[key] = attempt.txn.txn_id
        for attempt in committed:
            txn = attempt.txn
            committed_ids.append(txn.txn_id)
            for key, value in attempt.reads:
                traces.add_edge(last_writer.get(key), txn.txn_id, "wr", key)
                # In-batch anti-dependency: this reader serializes before the
                # batch's (lower-priority) writer of the same key.
                writer = batch_writer.get(key)
                if writer is not None and writer != txn.txn_id:
                    traces.add_edge(txn.txn_id, writer, "rw", key)
                unit_reads[key] = value
                stats.reads += 1
            for key, value in attempt.writes:
                traces.add_edge(last_writer.get(key), txn.txn_id, "ww", key)
                unit_writes.append((key, value))
                stats.writes += 1
            results[txn.txn_id] = TxnResult(
                txn_id=txn.txn_id,
                committed=True,
                outputs=attempt.outputs,
                read_set=attempt.reads,
                write_set=attempt.writes,
                aborts=retry_counts.get(txn.txn_id, 0),
            )
        for attempt in committed:
            for key, value in attempt.writes:
                self.store.put(key, value)
                last_writer[key] = attempt.txn.txn_id
        if committed_ids:
            traces.add_batch(committed_ids)
            stats.batch_sizes.append(len(committed_ids))
            stats.committed += len(committed_ids)
            schedule.append(
                ScheduleUnit(
                    txn_ids=tuple(committed_ids),
                    reads=tuple(unit_reads.items()),
                    writes=tuple(unit_writes),
                )
            )
        return set(committed_ids)


# -- cross-shard reservation (the sharded coarsening of Algorithm 5) ----------


@dataclass(frozen=True)
class CrossShardPlan:
    """One cross-shard transaction's statically derived footprint.

    Write keys in Litmus programs are functions of the parameters only
    (the deterministic-writeset assumption the paper's batching relies
    on), so the full footprint is known *before* execution — which is what
    lets reservation run as a pure planning step, with no locks held
    across any I/O or proving.
    """

    txn_id: int
    priority: int
    read_keys: frozenset
    write_keys: frozenset

    @property
    def rank(self) -> tuple[int, int]:
        return (self.priority, self.txn_id)


class CrossShardReserver:
    """Deterministic two-phase reserve/release across shards.

    The single-shard reservation round generalizes: a cross-shard
    transaction must hold the reservation on *every* write key, which now
    live on several shards.  Deadlock-freedom comes from a global
    acquisition order — transactions are processed strictly in rank order
    ``(priority, txn_id)`` and each acquires its write keys **shard by
    shard in ascending shard order** (keys in a canonical order within a
    shard), so no two transactions ever wait on each other in a cycle; the
    whole phase is a serial planning pass, not a concurrent lock protocol.

    The release discipline is the part that earns the "two-phase" name: a
    transaction whose acquisition fails on shard *k* **releases everything
    it already reserved on shards < k (and the partial shard k)** before
    re-queueing for the next round.  Without that release, an aborted
    reservation would keep later same-round transactions out of keys
    nobody will write — the starvation bug the regression test pins with
    two transactions reserving in opposite key order.

    Winners of one round are mutually non-conflicting (no shared key at
    all, reads included), so each shard's slice of the round is a
    non-conflicting batch in the Section 7.1 sense and proofs aggregate
    per shard exactly as in the unsharded engine.  Progress is guaranteed:
    the smallest-rank pending transaction always acquires everything.

    Emits ``shard.cross_rounds``, ``shard.reserve_conflicts`` and
    ``shard.partial_releases`` counters on the bound registry.
    """

    def __init__(
        self,
        shard_of: Callable[[tuple], int],
        registry: MetricsRegistry | None = None,
    ):
        self.shard_of = shard_of
        self.registry = registry if registry is not None else get_metrics()

    def plan_rounds(
        self, plans: Iterable[CrossShardPlan]
    ) -> list[list[CrossShardPlan]]:
        """Partition *plans* into deterministic rounds of non-conflicting
        winners, in commit order."""
        pending = sorted(plans, key=lambda p: p.rank)
        seen = {p.txn_id for p in pending}
        if len(seen) != len(pending):
            raise ConcurrencyError("duplicate transaction ids in cross-shard batch")
        rounds: list[list[CrossShardPlan]] = []
        while pending:
            winners, pending = self._round(pending)
            if not winners:  # pragma: no cover - smallest rank always wins
                raise ConcurrencyError("cross-shard reservation made no progress")
            rounds.append(winners)
        return rounds

    def _ordered_write_keys(self, plan: CrossShardPlan) -> list[tuple[int, tuple]]:
        """The canonical acquisition order: ascending shard, then key."""
        return sorted(
            ((self.shard_of(key), key) for key in plan.write_keys),
            key=lambda pair: (pair[0], repr(pair[1])),
        )

    def _round(
        self, pending: list[CrossShardPlan]
    ) -> tuple[list[CrossShardPlan], list[CrossShardPlan]]:
        self.registry.counter("shard.cross_rounds").inc()
        held: dict[tuple, tuple[int, int]] = {}  # key -> holder rank
        winners: list[CrossShardPlan] = []
        losers: list[CrossShardPlan] = []
        for plan in pending:  # already rank-sorted
            rank = plan.rank
            acquired: list[tuple] = []
            wins = True
            for _shard, key in self._ordered_write_keys(plan):
                holder = held.get(key)
                if holder is not None and holder != rank:
                    wins = False
                    break
                held[key] = rank
                acquired.append(key)
            if wins:
                # A winner may not read a key another winner writes: round
                # winners execute against the round-start snapshot, so a
                # read of an in-round write would observe a stale value.
                for key in plan.read_keys - plan.write_keys:
                    holder = held.get(key)
                    if holder is not None and holder != rank:
                        wins = False
                        break
            if wins:
                winners.append(plan)
            else:
                # The two-phase release: everything reserved so far —
                # including the shards acquired before the failing one —
                # goes back, so later same-round transactions are not
                # blocked by a reservation that will never commit.
                self.registry.counter("shard.reserve_conflicts").inc()
                if acquired:
                    self.registry.counter("shard.partial_releases").inc()
                    for key in acquired:
                        del held[key]
                losers.append(plan)
        return winners, losers
