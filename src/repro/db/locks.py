"""A shared/exclusive lock manager with wait-die deadlock avoidance.

Used by the two-phase-locking executor.  Lock requests either succeed,
block (the caller retries after the holder releases), or abort the
requester — the classic *wait-die* rule keyed on transaction priority: an
older transaction (smaller id) may wait for a younger holder, but a younger
requester "dies" (aborts and restarts) rather than wait behind an older
holder.  Waits-for cycles are impossible because waiting is only ever
older-waits-for-younger.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..errors import ConcurrencyError

__all__ = ["LockMode", "LockManager", "LockOutcome"]


class LockMode(enum.Enum):
    SHARED = "shared"
    EXCLUSIVE = "exclusive"


class LockOutcome(enum.Enum):
    GRANTED = "granted"
    WAIT = "wait"
    ABORT = "abort"  # wait-die: requester must restart


@dataclass
class _LockState:
    mode: LockMode | None = None
    holders: set[int] = field(default_factory=set)


class LockManager:
    """Key-granularity lock table."""

    def __init__(self):
        self._locks: dict[tuple, _LockState] = {}

    def _state(self, key: tuple) -> _LockState:
        state = self._locks.get(key)
        if state is None:
            state = _LockState()
            self._locks[key] = state
        return state

    def acquire(self, txn_id: int, key: tuple, mode: LockMode) -> LockOutcome:
        """Attempt to lock *key*; never blocks the Python thread.

        Wait-die: if the requester is older (smaller id) than every current
        holder it WAITS (the holders will finish); if any holder is older,
        the requester ABORTs and retries later.  This guarantees no deadlock
        without maintaining a waits-for graph.
        """
        state = self._state(key)
        holders = state.holders
        if txn_id in holders:
            if state.mode is LockMode.EXCLUSIVE or mode is LockMode.SHARED:
                return LockOutcome.GRANTED
            if holders == {txn_id}:  # lone reader upgrades in place
                state.mode = LockMode.EXCLUSIVE
                return LockOutcome.GRANTED
            others = holders - {txn_id}
            return LockOutcome.ABORT if min(others) < txn_id else LockOutcome.WAIT
        if not holders:
            state.mode = mode
            holders.add(txn_id)
            return LockOutcome.GRANTED
        if state.mode is LockMode.SHARED and mode is LockMode.SHARED:
            holders.add(txn_id)
            return LockOutcome.GRANTED
        # Conflict with other holders: wound-wait on priority (id order).
        return LockOutcome.ABORT if min(holders) < txn_id else LockOutcome.WAIT

    def release_all(self, txn_id: int) -> list[tuple]:
        """Release every lock held by *txn_id* (strict 2PL at commit/abort)."""
        released = []
        for key, state in list(self._locks.items()):
            if txn_id in state.holders:
                state.holders.discard(txn_id)
                released.append(key)
                if not state.holders:
                    del self._locks[key]
        return released

    def holders(self, key: tuple) -> frozenset[int]:
        state = self._locks.get(key)
        return frozenset(state.holders) if state else frozenset()

    def mode(self, key: tuple) -> LockMode | None:
        state = self._locks.get(key)
        return state.mode if state and state.holders else None

    def assert_consistent(self) -> None:
        """Invariant check used by property tests."""
        for key, state in self._locks.items():
            if len(state.holders) > 1 and state.mode is LockMode.EXCLUSIVE:
                raise ConcurrencyError(f"exclusive lock on {key} with multiple holders")
