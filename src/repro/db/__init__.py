"""The "normal DBMS" substrate (paper component 1a).

An in-memory transactional key-value engine with two concurrency-control
algorithms, both instrumented to emit the runtime traces (transaction
dependency edges, read/write sets, batch composition) that the verifiable
layer consumes:

- :mod:`repro.db.twopl` — two-phase locking with wound-wait deadlock
  avoidance (the Section 6 baseline, extended to logical multi-threading);
- :mod:`repro.db.detreserve` — deterministic reservation (Section 7.1,
  Algorithm 5), the batch CC algorithm whose non-conflicting batches enable
  proof aggregation.

Values are integers and keys are canonical tuples; richer rows (TPC-C) are
decomposed into one key per column by the workload layer, which keeps every
value circuit-representable.

:mod:`repro.db.wal` is the durability substrate: on-disk WAL segments of
verified command logs plus atomic checkpoints (see that package for the
crash-recovery story).
"""

from .commandlog import decode_batch, encode_batch, replay
from .database import Database
from .detreserve import DeterministicReservationExecutor
from .executor import ExecutionReport, ScheduleUnit
from .kvstore import KVStore
from .locks import LockManager, LockMode
from .traces import DependencyEdge, RuntimeTraces
from .twopl import TwoPhaseLockingExecutor
from .txn import Transaction, TxnResult
from .wal import (
    Checkpoint,
    DurabilityConfig,
    DurabilityManager,
    WriteAheadLog,
    load_latest_checkpoint,
    scan_wal,
)

__all__ = [
    "Checkpoint",
    "Database",
    "decode_batch",
    "encode_batch",
    "replay",
    "DependencyEdge",
    "DeterministicReservationExecutor",
    "DurabilityConfig",
    "DurabilityManager",
    "ExecutionReport",
    "KVStore",
    "LockManager",
    "LockMode",
    "load_latest_checkpoint",
    "RuntimeTraces",
    "ScheduleUnit",
    "scan_wal",
    "Transaction",
    "TwoPhaseLockingExecutor",
    "TxnResult",
    "WriteAheadLog",
]
