"""Pluggable filesystem layer for the durability stack (``repro.db.fsio``).

Every byte the WAL, checkpoint writer, and cross-shard intent journal put
on (or read off) disk flows through a :class:`FileSystem` — a deliberately
small interface over the dozen syscalls the durability code actually
uses.  Two implementations ship:

- :class:`OsFileSystem` — the real thing; thin pass-throughs to ``os`` and
  the builtin ``open``;
- :class:`FaultyFileSystem` — a seeded hostile disk.  It wraps any base
  filesystem and consults a :class:`~repro.faults.plan.FaultPlan` before
  each operation (``plan.on_fs(op, path, shard)``), so the same
  deterministic fault schedule that kills provers and crashes processes
  can also make the *disk* lie: EIO and ENOSPC on write, short writes,
  one-shot and sticky fsync failures, rename failures, and silent bit rot
  of the written bytes.

The fsync-failure model is deliberately pessimistic (the fsyncgate
lesson): when an injected fsync fails, the bytes appended since the last
*successful* fsync are physically thrown away — exactly what a kernel
that drops dirty pages and clears the error bit does to you.  A caller
that retried the fsync and believed its success would therefore lose
acknowledged data; the WAL instead poisons the handle and raises
:class:`~repro.errors.DurabilityError` (see
:mod:`repro.db.wal.segments`).

Directives an injector's ``on_fs`` hook may return (see
:mod:`repro.faults.disk`):

==================  =========================================================
directive           effect inside :class:`FaultyFileSystem`
==================  =========================================================
``("error", errno)``  the operation raises ``OSError(errno, ...)`` untouched
``("short", frac)``   a write persists only the first ``frac`` of the bytes,
                      then raises ``OSError(EIO)`` — a torn write
``("rot",)``          a write succeeds but one bit of the payload is flipped
                      on the way down — silent media corruption the CRC /
                      checksum layer must catch later
``("fsync-fail",)``   the fsync raises ``OSError(EIO)`` *and* the unsynced
                      tail is dropped (pessimistic page-cache loss)
==================  =========================================================
"""

from __future__ import annotations

import errno
import os
import random

__all__ = [
    "FaultyFileSystem",
    "FileHandle",
    "FileSystem",
    "OsFileSystem",
    "rot_file",
]


class FileHandle:
    """One open file of a :class:`FileSystem`; binary, append-oriented."""

    def write(self, data: bytes) -> int:
        raise NotImplementedError

    def flush(self) -> None:
        raise NotImplementedError

    def fsync(self) -> None:
        raise NotImplementedError

    def truncate(self, size: int) -> None:
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError

    @property
    def path(self) -> str:
        raise NotImplementedError

    def __enter__(self) -> "FileHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class FileSystem:
    """The syscall surface of the durability stack.

    ``mode`` for :meth:`open` is one of ``"xb"`` (exclusive create — WAL
    segments), ``"ab"`` (append — intent journal), ``"wb"`` (create or
    truncate — checkpoint temps).  Reads go through :meth:`read_bytes`;
    the durability code never holds a read handle open.
    """

    def open(self, path: str, mode: str) -> FileHandle:
        raise NotImplementedError

    def read_bytes(self, path: str) -> bytes:
        raise NotImplementedError

    def listdir(self, directory: str) -> list[str]:
        raise NotImplementedError

    def makedirs(self, path: str) -> None:
        raise NotImplementedError

    def exists(self, path: str) -> bool:
        raise NotImplementedError

    def getsize(self, path: str) -> int:
        raise NotImplementedError

    def unlink(self, path: str) -> None:
        raise NotImplementedError

    def replace(self, src: str, dst: str) -> None:
        raise NotImplementedError

    def truncate(self, path: str, size: int) -> None:
        raise NotImplementedError

    def fsync_dir(self, directory: str) -> None:
        raise NotImplementedError


class _OsFileHandle(FileHandle):
    def __init__(self, path: str, mode: str):
        self._path = path
        self._raw = open(path, mode)

    def write(self, data: bytes) -> int:
        return self._raw.write(data)

    def flush(self) -> None:
        self._raw.flush()

    def fsync(self) -> None:
        self._raw.flush()
        os.fsync(self._raw.fileno())

    def truncate(self, size: int) -> None:
        self._raw.truncate(size)

    def close(self) -> None:
        if not self._raw.closed:
            self._raw.close()

    @property
    def path(self) -> str:
        return self._path


class OsFileSystem(FileSystem):
    """The real filesystem: direct pass-throughs, no policy."""

    _MODES = ("xb", "ab", "wb")

    def open(self, path: str, mode: str) -> FileHandle:
        if mode not in self._MODES:
            raise ValueError(f"unsupported fsio mode {mode!r} (want {self._MODES})")
        return _OsFileHandle(path, mode)

    def read_bytes(self, path: str) -> bytes:
        with open(path, "rb") as handle:
            return handle.read()

    def listdir(self, directory: str) -> list[str]:
        return os.listdir(directory)

    def makedirs(self, path: str) -> None:
        os.makedirs(path, exist_ok=True)

    def exists(self, path: str) -> bool:
        return os.path.exists(path)

    def getsize(self, path: str) -> int:
        return os.path.getsize(path)

    def unlink(self, path: str) -> None:
        os.unlink(path)

    def replace(self, src: str, dst: str) -> None:
        os.replace(src, dst)

    def truncate(self, path: str, size: int) -> None:
        with open(path, "r+b") as handle:
            handle.truncate(size)

    def fsync_dir(self, directory: str) -> None:
        """Make a rename/create/unlink in *directory* durable (POSIX)."""
        try:
            fd = os.open(directory, os.O_RDONLY)
        except OSError:  # platforms without directory fds
            return
        try:
            os.fsync(fd)
        except OSError:
            pass
        finally:
            os.close(fd)


# The process-default backend; module-level so every component that takes
# ``fs=None`` shares one stateless instance.
OS_FILESYSTEM = OsFileSystem()


def rot_file(path: str, position: int, mask: int = 0x20) -> None:
    """Physically flip one byte of *path* in place — at-rest bit rot.

    Used by the disk-fault injectors and the scrub tests; *position* is
    taken modulo the file size so callers can pass any seeded integer.
    ``mask`` must be non-zero (a zero mask would be a no-op "rot").
    """
    if not mask & 0xFF:
        raise ValueError("rot mask must flip at least one bit")
    with open(path, "r+b") as handle:
        handle.seek(0, os.SEEK_END)
        size = handle.tell()
        if size == 0:
            return
        offset = position % size
        handle.seek(offset)
        byte = handle.read(1)
        handle.seek(offset)
        handle.write(bytes([byte[0] ^ (mask & 0xFF)]))


class _FaultyFileHandle(FileHandle):
    """A handle whose writes and fsyncs can be made to lie on schedule."""

    def __init__(self, fs: "FaultyFileSystem", inner: FileHandle, size: int):
        self._fs = fs
        self._inner = inner
        self._size = size
        # Bytes known-durable: everything up to the last successful fsync.
        # An injected fsync failure truncates back to this watermark —
        # the pessimistic model of a kernel dropping dirty pages.
        self._synced = size

    def write(self, data: bytes) -> int:
        directive = self._fs._consult("write", self._inner.path)
        if directive is not None:
            action = directive[0]
            if action == "error":
                raise OSError(directive[1], os.strerror(directive[1]), self._inner.path)
            if action == "short":
                keep = max(1, min(len(data) - 1, int(len(data) * directive[1])))
                self._inner.write(data[:keep])
                self._inner.flush()
                self._size += keep
                raise OSError(
                    errno.EIO, "short write (injected)", self._inner.path
                )
            if action == "rot":
                position = self._fs._rng.randrange(len(data)) if data else 0
                bit = 1 << self._fs._rng.randrange(8)
                data = (
                    data[:position]
                    + bytes([data[position] ^ bit])
                    + data[position + 1 :]
                )
        written = self._inner.write(data)
        self._size += len(data)
        return written

    def flush(self) -> None:
        self._inner.flush()

    def fsync(self) -> None:
        directive = self._fs._consult("fsync", self._inner.path)
        if directive is not None and directive[0] == "fsync-fail":
            # Drop the unsynced tail *before* raising: a later reader must
            # not see bytes whose durability this fsync just disclaimed.
            self._inner.flush()
            self._inner.truncate(self._synced)
            self._size = self._synced
            raise OSError(
                errno.EIO, "fsync failed (injected)", self._inner.path
            )
        self._inner.fsync()
        self._synced = self._size

    def truncate(self, size: int) -> None:
        self._inner.truncate(size)
        self._size = size
        self._synced = min(self._synced, size)

    def close(self) -> None:
        self._inner.close()

    @property
    def path(self) -> str:
        return self._inner.path


class FaultyFileSystem(FileSystem):
    """A hostile disk: a base filesystem plus a fault plan's schedule.

    Consults ``plan.on_fs(op, path, shard)`` before every write, fsync,
    and rename; a plan with no disk injectors makes every consult a cheap
    no-op, so sessions wrap their filesystem unconditionally whenever a
    fault plan is attached.  *shard* tags which engine of a sharded
    deployment owns this filesystem view (``None`` for the coordinator /
    an unsharded session), letting injectors target a single shard's disk.
    """

    def __init__(self, plan, base: FileSystem | None = None, shard: int | None = None):
        self.plan = plan
        self.base = base if base is not None else OS_FILESYSTEM
        self.shard = shard
        # Rot positions must be deterministic but must not perturb the
        # plan's main stream (which times crashes): derive a private one.
        seed = getattr(plan, "seed", 0)
        lane = shard if shard is not None else -1
        self._rng = random.Random((seed * 2654435761 + lane) & 0xFFFFFFFF)

    def _consult(self, op: str, path: str):
        if self.plan is None:
            return None
        return self.plan.on_fs(op, path, shard=self.shard)

    def open(self, path: str, mode: str) -> FileHandle:
        directive = self._consult("open", path)
        if directive is not None and directive[0] == "error":
            raise OSError(directive[1], os.strerror(directive[1]), path)
        size = self.base.getsize(path) if mode == "ab" and self.base.exists(path) else 0
        return _FaultyFileHandle(self, self.base.open(path, mode), size)

    def read_bytes(self, path: str) -> bytes:
        return self.base.read_bytes(path)

    def listdir(self, directory: str) -> list[str]:
        return self.base.listdir(directory)

    def makedirs(self, path: str) -> None:
        self.base.makedirs(path)

    def exists(self, path: str) -> bool:
        return self.base.exists(path)

    def getsize(self, path: str) -> int:
        return self.base.getsize(path)

    def unlink(self, path: str) -> None:
        self.base.unlink(path)

    def replace(self, src: str, dst: str) -> None:
        directive = self._consult("replace", dst)
        if directive is not None and directive[0] == "error":
            raise OSError(directive[1], os.strerror(directive[1]), dst)
        self.base.replace(src, dst)

    def truncate(self, path: str, size: int) -> None:
        self.base.truncate(path, size)

    def fsync_dir(self, directory: str) -> None:
        self.base.fsync_dir(directory)
