"""Two-phase locking executor with runtime-trace collection (Algorithm 4).

Transactions run as *logical threads*: each is a cursor over its program's
statements, and a round-robin scheduler interleaves the cursors.  Lock
conflicts block or restart a cursor (wait-die, see
:mod:`repro.db.locks`); strict 2PL releases all locks at commit.

While executing, the executor maintains the ``LastReader`` / ``LastWriter``
metadata of Algorithm 4 and appends the corresponding dependency edges to
the runtime traces, which later fix the serial replay order of the wrapped
transaction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..errors import ConcurrencyError, TransactionError
from ..vc.program import Emit, Env, ReadStmt, WriteStmt
from .executor import ExecutionReport, ExecutionStats, ScheduleUnit
from .kvstore import KVStore
from .locks import LockManager, LockMode, LockOutcome
from .traces import RuntimeTraces
from .txn import Transaction, TxnResult

__all__ = ["TwoPhaseLockingExecutor"]

_MAX_RESTARTS = 10_000


@dataclass
class _Cursor:
    """The execution state of one in-flight transaction."""

    txn: Transaction
    position: int = 0
    env: Env | None = None
    reads: list[tuple[tuple, int]] = field(default_factory=list)
    writes: dict[tuple, int] = field(default_factory=dict)
    write_order: list[tuple] = field(default_factory=list)
    undo: list[tuple[tuple, int, bool]] = field(default_factory=list)  # key, old, existed
    meta_undo: list[tuple[tuple, int | None]] = field(default_factory=list)  # key, prev writer
    outputs: list[int] = field(default_factory=list)
    restarts: int = 0
    blocked: bool = False
    parked: bool = False  # restarted by wait-die; waits for the next commit

    def reset(self) -> None:
        self.position = 0
        self.env = None
        self.reads.clear()
        self.writes.clear()
        self.write_order.clear()
        self.undo.clear()
        self.meta_undo.clear()
        self.outputs.clear()
        self.blocked = False

    @property
    def done(self) -> bool:
        return self.position >= len(self.txn.program.statements)


@dataclass
class _KeyMeta:
    """Algorithm 4 metadata: the last committed writer and current readers."""

    last_writer: int | None = None
    last_readers: set[int] = field(default_factory=set)


class TwoPhaseLockingExecutor:
    """Strict 2PL over logical threads.

    ``num_threads`` bounds how many transactions are in flight at once; the
    paper's baseline is the single-threaded case (``num_threads=1``), where
    every transaction runs to completion before the next starts.
    """

    def __init__(self, store: KVStore, num_threads: int = 1):
        if num_threads < 1:
            raise ConcurrencyError("need at least one logical thread")
        self.store = store
        self.num_threads = num_threads

    def run(self, txns: Sequence[Transaction]) -> ExecutionReport:
        traces = RuntimeTraces()
        stats = ExecutionStats(num_txns=len(txns))
        locks = LockManager()
        meta: dict[tuple, _KeyMeta] = {}
        results: dict[int, TxnResult] = {}
        schedule: list[ScheduleUnit] = []

        pending = list(txns)
        active: list[_Cursor] = []
        pending.reverse()  # pop() takes from the front of the original order

        def admit() -> None:
            while pending and len(active) < self.num_threads:
                active.append(_Cursor(txn=pending.pop()))

        admit()
        spin_guard = 0
        while active:
            progressed = False
            for cursor in list(active):
                if cursor.parked:
                    continue  # waits until some transaction commits
                outcome = self._step(cursor, locks, meta, traces, stats)
                if outcome == "progress":
                    progressed = True
                if outcome == "restart":
                    cursor.restarts += 1
                    stats.aborted_retries += 1
                    if cursor.restarts > _MAX_RESTARTS:
                        raise ConcurrencyError(
                            f"transaction {cursor.txn.txn_id} starved after "
                            f"{_MAX_RESTARTS} restarts"
                        )
                    self._abort(cursor, locks, meta, traces)
                    # Parking until the next commit breaks the shared-lock
                    # re-acquisition livelock (the older waiter gets through).
                    cursor.parked = True
                    progressed = True
                if cursor.done:
                    self._commit(cursor, locks, meta, results, schedule, stats)
                    active.remove(cursor)
                    for other in active:
                        other.parked = False
                    admit()
                    progressed = True
            if not progressed:
                spin_guard += 1
                if spin_guard > len(active) + 2:
                    raise ConcurrencyError("scheduler wedged: every cursor blocked")
            else:
                spin_guard = 0
        stats.rounds = len(schedule)
        return ExecutionReport(results=results, traces=traces, schedule=schedule, stats=stats)

    # -- one scheduling quantum -------------------------------------------------

    def _step(
        self,
        cursor: _Cursor,
        locks: LockManager,
        meta: dict[tuple, _KeyMeta],
        traces: RuntimeTraces,
        stats: ExecutionStats,
    ) -> str:
        """Advance *cursor* by one statement; returns progress/blocked/restart."""
        if cursor.done:
            return "progress"
        if cursor.env is None:
            cursor.env = Env(params=cursor.txn.params)
        txn = cursor.txn
        stmt = txn.program.statements[cursor.position]
        if isinstance(stmt, ReadStmt):
            key = stmt.key.resolve(txn.params)
            grant = locks.acquire(txn.txn_id, key, LockMode.SHARED)
            if grant is LockOutcome.WAIT:
                cursor.blocked = True
                return "blocked"
            if grant is LockOutcome.ABORT:
                return "restart"
            key_meta = meta.setdefault(key, _KeyMeta())
            traces.add_edge(key_meta.last_writer, txn.txn_id, "wr", key)
            key_meta.last_readers.add(txn.txn_id)
            if key in cursor.writes:
                value = cursor.writes[key]  # read-your-writes, not a store read
            else:
                value = self.store.get(key)
                if all(key != seen for seen, _v in cursor.reads):
                    cursor.reads.append((key, value))
            cursor.env.reads[stmt.name] = value
            stats.reads += 1
        elif isinstance(stmt, WriteStmt):
            key = stmt.key.resolve(txn.params)
            grant = locks.acquire(txn.txn_id, key, LockMode.EXCLUSIVE)
            if grant is LockOutcome.WAIT:
                cursor.blocked = True
                return "blocked"
            if grant is LockOutcome.ABORT:
                return "restart"
            key_meta = meta.setdefault(key, _KeyMeta())
            traces.add_edge(key_meta.last_writer, txn.txn_id, "ww", key)
            for reader in key_meta.last_readers:
                traces.add_edge(reader, txn.txn_id, "rw", key)
            if key not in cursor.writes:
                cursor.meta_undo.append((key, key_meta.last_writer))
            key_meta.last_writer = txn.txn_id
            key_meta.last_readers = set()
            value = stmt.value.eval(cursor.env)
            if key not in cursor.writes:
                cursor.undo.append((key, self.store.get(key), key in self.store))
                cursor.write_order.append(key)
            cursor.writes[key] = value
            self.store.put(key, value)  # in-place write, undone on abort
            stats.writes += 1
        elif isinstance(stmt, Emit):
            cursor.outputs.append(stmt.expr.eval(cursor.env))
        else:  # pragma: no cover - defensive
            raise TransactionError(f"unknown statement {stmt!r}")
        cursor.position += 1
        cursor.blocked = False
        return "progress"

    def _abort(
        self,
        cursor: _Cursor,
        locks: LockManager,
        meta: dict[tuple, _KeyMeta],
        traces: RuntimeTraces,
    ) -> None:
        """Roll back an attempt completely: data, metadata, and trace edges.

        Leaving any footprint of the aborted attempt behind would poison the
        dependency graph (e.g. a stale reader->writer edge plus the re-run's
        writer->reader edge forms a spurious cycle).
        """
        txn_id = cursor.txn.txn_id
        for key, old_value, _existed in reversed(cursor.undo):
            self.store.put(key, old_value)
        for key, prev_writer in reversed(cursor.meta_undo):
            key_meta = meta.get(key)
            if key_meta is not None and key_meta.last_writer == txn_id:
                key_meta.last_writer = prev_writer
        for key, _value in cursor.reads:
            key_meta = meta.get(key)
            if key_meta is not None:
                key_meta.last_readers.discard(txn_id)
        # Every edge involving this transaction belongs to a voided attempt
        # (it has never committed), so a global filter is exact.
        traces.edges[:] = [
            edge for edge in traces.edges if edge.src != txn_id and edge.dst != txn_id
        ]
        locks.release_all(txn_id)
        cursor.reset()

    def _commit(
        self,
        cursor: _Cursor,
        locks: LockManager,
        meta: dict[tuple, _KeyMeta],
        results: dict[int, TxnResult],
        schedule: list[ScheduleUnit],
        stats: ExecutionStats,
    ) -> None:
        txn = cursor.txn
        locks.release_all(txn.txn_id)
        write_set = tuple((key, cursor.writes[key]) for key in cursor.write_order)
        result = TxnResult(
            txn_id=txn.txn_id,
            committed=True,
            outputs=tuple(cursor.outputs),
            read_set=tuple(cursor.reads),
            write_set=write_set,
            aborts=cursor.restarts,
        )
        results[txn.txn_id] = result
        schedule.append(
            ScheduleUnit(
                txn_ids=(txn.txn_id,),
                reads=tuple(cursor.reads),
                writes=write_set,
            )
        )
        stats.committed += 1
        stats.batch_sizes.append(1)
