#!/usr/bin/env python3
"""An organization proxy multiplexing many end users onto one Litmus client.

The paper's client "might be the proxy of millions of real users".  This
example runs a small marketplace where several users submit purchases and
balance checks concurrently; the proxy groups them into verification
batches, and every user's answer comes back only after the whole batch's
proof verified.

Run:  python examples/multi_user_proxy.py
"""

from repro import LitmusClient, LitmusConfig, LitmusServer
from repro.core.proxy import ClientProxy
from repro.crypto import RSAGroup
from repro.vc import Program
from repro.vc.program import (
    Add,
    Emit,
    KeyTemplate,
    Param,
    ReadStmt,
    ReadVal,
    Sub,
    WriteStmt,
)

PURCHASE = Program(
    name="purchase",
    params=("buyer", "seller", "price"),
    statements=(
        ReadStmt("b", KeyTemplate(("wallet", Param("buyer")))),
        ReadStmt("s", KeyTemplate(("wallet", Param("seller")))),
        WriteStmt(KeyTemplate(("wallet", Param("buyer"))), Sub(ReadVal("b"), Param("price"))),
        WriteStmt(KeyTemplate(("wallet", Param("seller"))), Add(ReadVal("s"), Param("price"))),
        Emit(Sub(ReadVal("b"), Param("price"))),
    ),
)

BALANCE = Program(
    name="balance",
    params=("who",),
    statements=(
        ReadStmt("b", KeyTemplate(("wallet", Param("who")))),
        Emit(ReadVal("b")),
    ),
)


def main() -> None:
    print("== Multi-user proxy ==")
    group = RSAGroup.generate(bits=512, seed=b"proxy")
    wallets = {("wallet", u): 500 for u in range(6)}
    config = LitmusConfig(cc="dr", processing_batch_size=8, prime_bits=64)
    server = LitmusServer(initial=wallets, config=config, group=group)
    client = LitmusClient(group, server.digest, config=config)
    proxy = ClientProxy(server, client, max_batch=8)

    tickets = {
        "alice": proxy.submit("alice", PURCHASE, {"buyer": 0, "seller": 1, "price": 120}),
        "bob": proxy.submit("bob", PURCHASE, {"buyer": 2, "seller": 3, "price": 75}),
        "carol": proxy.submit("carol", PURCHASE, {"buyer": 4, "seller": 0, "price": 30}),
        "dave": proxy.submit("dave", BALANCE, {"who": 1}),
    }
    print(f"queued {proxy.queued} user requests; flushing one verified batch...")
    assert proxy.flush()
    for user, ticket in tickets.items():
        print(f"  {user}: txn {ticket.txn_id} verified, outputs {ticket.outputs}")
    total = sum(server.db.get(("wallet", u)) for u in range(6))
    print(f"wallet total conserved: {total} (expected 3000)")
    assert total == 3000
    print(f"batches verified: {proxy.batches_verified}")


if __name__ == "__main__":
    main()
