#!/usr/bin/env python3
"""An organization session multiplexing many end users onto one Litmus client.

The paper's client "might be the proxy of millions of real users".  This
example runs a small marketplace where several users submit purchases and
balance checks concurrently; the :class:`~repro.LitmusSession` groups them
into verification batches, and every user's answer comes back only after
the whole batch's proof verified.

Run:  python examples/multi_user_proxy.py
"""

from repro import LitmusConfig, LitmusSession
from repro.crypto import RSAGroup
from repro.vc import Program
from repro.vc.program import (
    Add,
    Emit,
    KeyTemplate,
    Param,
    ReadStmt,
    ReadVal,
    Sub,
    WriteStmt,
)

PURCHASE = Program(
    name="purchase",
    params=("buyer", "seller", "price"),
    statements=(
        ReadStmt("b", KeyTemplate(("wallet", Param("buyer")))),
        ReadStmt("s", KeyTemplate(("wallet", Param("seller")))),
        WriteStmt(KeyTemplate(("wallet", Param("buyer"))), Sub(ReadVal("b"), Param("price"))),
        WriteStmt(KeyTemplate(("wallet", Param("seller"))), Add(ReadVal("s"), Param("price"))),
        Emit(Sub(ReadVal("b"), Param("price"))),
    ),
)

BALANCE = Program(
    name="balance",
    params=("who",),
    statements=(
        ReadStmt("b", KeyTemplate(("wallet", Param("who")))),
        Emit(ReadVal("b")),
    ),
)


def main() -> None:
    print("== Multi-user session ==")
    group = RSAGroup.generate(bits=512, seed=b"proxy")
    wallets = {("wallet", u): 500 for u in range(6)}
    config = LitmusConfig(cc="dr", processing_batch_size=8, prime_bits=64)
    session = LitmusSession.create(
        initial=wallets, config=config, group=group, max_batch=8
    )

    tickets = {
        "alice": session.submit("alice", PURCHASE, buyer=0, seller=1, price=120),
        "bob": session.submit("bob", PURCHASE, buyer=2, seller=3, price=75),
        "carol": session.submit("carol", PURCHASE, buyer=4, seller=0, price=30),
        "dave": session.submit("dave", BALANCE, who=1),
    }
    print(f"queued {session.queued} user requests; flushing one verified batch...")
    result = session.flush()
    assert result.accepted, result.reason
    for user, ticket in tickets.items():
        print(f"  {user}: txn {ticket.txn_id} verified, outputs {ticket.outputs}")
    print(f"per-user outputs from the batch result: {dict(result.user_outputs)}")
    total = sum(session.server.db.get(("wallet", u)) for u in range(6))
    print(f"wallet total conserved: {total} (expected 3000)")
    assert total == 3000
    print(f"batches verified: {session.batches_verified}")


if __name__ == "__main__":
    main()
