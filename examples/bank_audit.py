#!/usr/bin/env python3
"""A verifiable bank: consistency invariants and tamper detection.

Motivating scenario from the paper's introduction: an organization
outsources a financial database and must detect both data tampering and
semantic violations.  This example shows

1. transfers verifying cleanly under a sum-preserving invariant (Section 9
   consistency);
2. a transaction that mints money being caught — the wrapped transaction's
   AllCommit bit flips and the client rejects;
3. a server whose storage was corrupted being *unable to produce a proof
   at all* for a subsequent batch.

Run:  python examples/bank_audit.py
"""

from repro import LitmusClient, LitmusConfig, LitmusServer, SumInvariant
from repro.crypto import RSAGroup
from repro.db import Transaction
from repro.errors import ConstraintViolation, IntegrityError
from repro.vc import Program
from repro.vc.program import (
    Add,
    Const,
    Emit,
    KeyTemplate,
    Param,
    ReadStmt,
    ReadVal,
    Sub,
    WriteStmt,
)

TRANSFER = Program(
    name="transfer",
    params=("src", "dst", "amount"),
    statements=(
        ReadStmt("src_bal", KeyTemplate(("acct", Param("src")))),
        ReadStmt("dst_bal", KeyTemplate(("acct", Param("dst")))),
        WriteStmt(
            KeyTemplate(("acct", Param("src"))), Sub(ReadVal("src_bal"), Param("amount"))
        ),
        WriteStmt(
            KeyTemplate(("acct", Param("dst"))), Add(ReadVal("dst_bal"), Param("amount"))
        ),
        Emit(Sub(ReadVal("src_bal"), Param("amount"))),
    ),
)

MINT = Program(
    name="mint",
    params=("k",),
    statements=(WriteStmt(KeyTemplate(("acct", Param("k"))), Const(1_000_000)),),
)


def main() -> None:
    print("== Verifiable bank with a sum-preserving invariant ==")
    group = RSAGroup.generate(bits=512, seed=b"bank")
    accounts = {("acct", i): 1_000 for i in range(8)}
    invariant = SumInvariant.over("acct")
    config = LitmusConfig(cc="dr", processing_batch_size=16, prime_bits=64)
    server = LitmusServer(
        initial=accounts, config=config, group=group, invariants=(invariant,)
    )
    client = LitmusClient(group, server.digest, config=config, invariants=(invariant,))

    # 1. Honest transfers pass.
    transfers = [
        Transaction(i, TRANSFER, {"src": i % 8, "dst": (i + 3) % 8, "amount": 25})
        for i in range(1, 17)
    ]
    response = server.execute_batch(transfers)
    verdict = client.verify_response(transfers, response)
    print(f"honest transfers: accepted={verdict.accepted}")
    assert verdict.accepted

    # 2. A minting transaction trips the invariant: AllCommit flips to 0 and
    #    the client rejects the batch.
    minting = [Transaction(100, MINT, {"k": 0})]
    response = server.execute_batch(minting)
    verdict = client.verify_response(minting, response)
    print(
        f"minting transaction: accepted={verdict.accepted} "
        f"(reason: {verdict.reason})"
    )
    assert not verdict.accepted

    # 3. Corrupt the server's storage behind the protocol's back: the next
    #    batch cannot even be proven (the replay catches the inconsistency).
    server.db.put(("acct", 1), 999_999)
    probe = [
        Transaction(200, TRANSFER, {"src": 1, "dst": 2, "amount": 1}),
    ]
    try:
        server.execute_batch(probe)
    except (ConstraintViolation, IntegrityError) as exc:
        print(f"corrupted storage: proving failed as expected ({type(exc).__name__})")
    else:
        raise SystemExit("corruption went unnoticed — this should never happen")
    print("all attack scenarios detected")


if __name__ == "__main__":
    main()
