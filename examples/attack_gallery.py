#!/usr/bin/env python3
"""Attack gallery: every tampering strategy the client must catch.

The paper's threat model: a compromised server can at best mount a
denial-of-service.  This example exercises a gallery of active attacks
against a real server response and shows each one rejected:

1. forged transaction outputs;
2. a forged final digest (dropping a committed write);
3. silently dropping a proof piece;
4. claiming conflicting transactions formed a non-conflicting batch
   (an isolation-level downgrade — the ACIDRain-style attack);
5. swapping proofs between pieces;
6. replaying a stale proof after more writes happened.

Run:  python examples/attack_gallery.py
"""

import dataclasses

from repro import LitmusClient, LitmusConfig, LitmusServer
from repro.crypto import RSAGroup
from repro.db import Transaction
from repro.vc import Program
from repro.vc.program import (
    Add,
    Const,
    Emit,
    KeyTemplate,
    Param,
    ReadStmt,
    ReadVal,
    WriteStmt,
)

INCREMENT = Program(
    name="increment",
    params=("k",),
    statements=(
        ReadStmt("v", KeyTemplate(("row", Param("k")))),
        WriteStmt(KeyTemplate(("row", Param("k"))), Add(ReadVal("v"), Const(1))),
        Emit(ReadVal("v")),
    ),
)


def increments(ids, key_of=lambda i: i):
    return [Transaction(i, INCREMENT, {"k": key_of(i)}) for i in ids]


def expect_rejected(name: str, client, txns, response) -> None:
    verdict = client.verify_response(txns, response)
    status = "REJECTED" if not verdict.accepted else "!!! ACCEPTED !!!"
    print(f"{name:<55} {status}")
    assert not verdict.accepted, f"attack {name!r} was not detected"


def main() -> None:
    print("== Attack gallery ==")
    group = RSAGroup.generate(bits=512, seed=b"attacks")
    config = LitmusConfig(
        cc="dr", processing_batch_size=4, batches_per_piece=1, prime_bits=64
    )

    def fresh_pair():
        server = LitmusServer(initial={}, config=config, group=group)
        client = LitmusClient(group, server.digest, config=config)
        return server, client

    # 1. Forged outputs.
    server, client = fresh_pair()
    txns = increments(range(1, 9))
    response = server.execute_batch(txns)
    piece = response.pieces[0]
    forged = dataclasses.replace(
        response,
        pieces=(
            dataclasses.replace(
                piece, outputs=tuple((i, (777,)) for i, _v in piece.outputs)
            ),
        )
        + response.pieces[1:],
    )
    expect_rejected("forged transaction outputs", client, txns, forged)

    # 2. Forged final digest (hiding a write).
    server, client = fresh_pair()
    response = server.execute_batch(txns)
    forged = dataclasses.replace(response, final_digest=response.final_digest ^ 1)
    expect_rejected("forged final digest (dropped write)", client, txns, forged)

    # 3. Dropped proof piece.
    server, client = fresh_pair()
    response = server.execute_batch(txns)
    assert len(response.pieces) > 1
    forged = dataclasses.replace(response, pieces=response.pieces[:-1])
    expect_rejected("silently dropped proof piece", client, txns, forged)

    # 4. Isolation downgrade: conflicting txns claimed non-conflicting.
    server, client = fresh_pair()
    conflicting = increments(range(1, 3), key_of=lambda i: 7)
    response = server.execute_batch(conflicting)
    merged = dataclasses.replace(
        response.pieces[0], unit_txn_ids=((1, 2),), txn_ids=(1, 2)
    )
    forged = dataclasses.replace(response, pieces=(merged,))
    expect_rejected("isolation downgrade (fake batch)", client, conflicting, forged)

    # 5. Swapped proofs between pieces.
    server, client = fresh_pair()
    response = server.execute_batch(txns)
    p0, p1 = response.pieces[0], response.pieces[1]
    forged = dataclasses.replace(
        response,
        pieces=(
            dataclasses.replace(p0, proof=p1.proof),
            dataclasses.replace(p1, proof=p0.proof),
        )
        + response.pieces[2:],
    )
    expect_rejected("swapped proofs between pieces", client, txns, forged)

    # 6. Stale replay: an old (valid!) response re-sent after more commits.
    server, client = fresh_pair()
    first = increments(range(1, 5))
    old_response = server.execute_batch(first)
    assert client.verify_response(first, old_response).accepted
    second = increments(range(5, 9))
    assert client.verify_response(second, server.execute_batch(second)).accepted
    expect_rejected("stale response replayed", client, first, old_response)

    print("\nall six attacks detected — the server can at best refuse service")


if __name__ == "__main__":
    main()
