#!/usr/bin/env python3
"""The full operational story: verification, audit, crash, recovery.

Combines four operational components the paper's Section 9 motivates:

1. verified batches with a running **audit trail** (who ran what, between
   which digests, with how many proof bytes);
2. the client's **hash-chained digest log** (its durable trust anchor);
3. a **server snapshot** (database + certified digest);
4. a crash: both sides restart from persisted state, cross-check each
   other, and verification continues on the same digest chain — while a
   *stale* snapshot restore is refused.

Run:  python examples/recovery_story.py
"""

from repro import LitmusClient, LitmusConfig, LitmusServer
from repro.core.audit import AuditTrail
from repro.core.checkpoint import DigestLog
from repro.core.snapshot import restore_server, snapshot_server
from repro.crypto import RSAGroup
from repro.db import Transaction
from repro.errors import VerificationFailure
from repro.vc import Program
from repro.vc.program import (
    Add,
    Emit,
    KeyTemplate,
    Param,
    ReadStmt,
    ReadVal,
    Sub,
    WriteStmt,
)

TRANSFER = Program(
    name="transfer",
    params=("src", "dst", "amount"),
    statements=(
        ReadStmt("s", KeyTemplate(("acct", Param("src")))),
        ReadStmt("d", KeyTemplate(("acct", Param("dst")))),
        WriteStmt(KeyTemplate(("acct", Param("src"))), Sub(ReadVal("s"), Param("amount"))),
        WriteStmt(KeyTemplate(("acct", Param("dst"))), Add(ReadVal("d"), Param("amount"))),
        Emit(Sub(ReadVal("s"), Param("amount"))),
    ),
)


def main() -> None:
    print("== Recovery story ==")
    group = RSAGroup.generate(bits=512, seed=b"recovery")
    config = LitmusConfig(cc="dr", processing_batch_size=8, prime_bits=64)
    accounts = {("acct", i): 1_000 for i in range(4)}
    server = LitmusServer(initial=accounts, config=config, group=group)
    client = LitmusClient(group, server.digest, config=config)
    trail = AuditTrail(initial_digest=server.digest)
    stale_snapshot = snapshot_server(server)  # kept around to show detection

    txn_id = 1
    for _round in range(3):
        txns = [
            Transaction(txn_id + j, TRANSFER, {"src": j % 4, "dst": (j + 1) % 4, "amount": 25})
            for j in range(5)
        ]
        txn_id += 5
        response = server.execute_batch(txns)
        verdict = client.verify_response(txns, response)
        trail.observe(txns, response, verdict)
        assert verdict.accepted

    print(trail.render())
    server_state = snapshot_server(server)
    client_state = trail.digest_log.to_json()
    print("\n-- crash: both sides restart from persisted state --")

    restored_log = DigestLog.from_json(client_state)
    try:
        restore_server(stale_snapshot, config, group, expected_digest=restored_log.latest_digest)
        raise SystemExit("stale snapshot slipped through!")
    except VerificationFailure as exc:
        print(f"stale snapshot refused: {exc}")

    restored_server = restore_server(
        server_state, config, group, expected_digest=restored_log.latest_digest
    )
    restored_client = LitmusClient(group, restored_log.latest_digest, config=config)
    txns = [
        Transaction(txn_id + j, TRANSFER, {"src": j % 4, "dst": (j + 2) % 4, "amount": 10})
        for j in range(4)
    ]
    verdict = restored_client.verify_response(txns, restored_server.execute_batch(txns))
    print(f"post-recovery batch verified: {verdict.accepted}")
    assert verdict.accepted
    total = sum(restored_server.db.get(("acct", i)) for i in range(4))
    print(f"balances conserved across the crash: {total} (expected 4000)")
    assert total == 4000


if __name__ == "__main__":
    main()
