#!/usr/bin/env python3
"""SQL stored procedures through the verifiable pipeline.

Defines an inventory application in SQL, compiles the procedures to
circuit-ready stored procedures, and runs them through the full Litmus
protocol — parsing, planning, circuit compilation, proof generation and
client verification all in one flow.

Run:  python examples/sql_frontend.py
"""

from repro import LitmusClient, LitmusConfig, LitmusServer
from repro.crypto import RSAGroup
from repro.db import Transaction
from repro.sql import SqlCatalog, compile_procedure


def main() -> None:
    print("== SQL front-end ==")
    catalog = SqlCatalog()
    catalog.create_table("inventory", key=("sku",), columns=("qty", "reserved"))
    catalog.create_table("orders", key=("order_id",), columns=("sku", "amount"))

    place_order = compile_procedure(
        "place_order",
        """
        UPDATE inventory
            SET qty = CASE WHEN qty < :amount THEN qty ELSE qty - :amount END,
                reserved = reserved + CASE WHEN qty < :amount THEN 0 ELSE :amount END
            WHERE sku = :sku;
        INSERT INTO orders (sku, amount) VALUES (:sku, :amount)
            WHERE order_id = :order_id;
        SELECT qty FROM inventory WHERE sku = :sku;
        """,
        catalog,
    )
    print(f"compiled procedure {place_order.name!r}: params {place_order.params}")

    initial = {}
    for sku in range(3):
        initial.update(catalog.initial_row("inventory", (sku,), qty=50, reserved=0))

    group = RSAGroup.generate(bits=512, seed=b"sql")
    config = LitmusConfig(cc="dr", processing_batch_size=8, prime_bits=64)
    server = LitmusServer(initial=initial, config=config, group=group)
    client = LitmusClient(group, server.digest, config=config)

    txns = [
        Transaction(i, place_order, {"sku": i % 3, "amount": 5, "order_id": 1000 + i})
        for i in range(1, 10)
    ]
    response = server.execute_batch(txns)
    verdict = client.verify_response(txns, response)
    print(f"verified batch of {len(txns)} SQL transactions: accepted={verdict.accepted}")
    assert verdict.accepted, verdict.reason
    for sku in range(3):
        print(
            f"sku {sku}: qty={server.db.get(('inventory.qty', sku))}, "
            f"reserved={server.db.get(('inventory.reserved', sku))}"
        )
    print(f"order 1001 -> sku {server.db.get(('orders.sku', 1001))}, "
          f"amount {server.db.get(('orders.amount', 1001))}")


if __name__ == "__main__":
    main()
