#!/usr/bin/env python3
"""Verifiable TPC-C: New Order and Payment through the full protocol.

Demonstrates the paper's Section 8 TPC-C configuration at example scale:
warehouse order entry with parameter-only write targets (client-assigned
order ids, customers selected by id, no HISTORY inserts), executed under
deterministic reservation and verified end to end — plus the modeled
paper-scale throughput for the heavy New Order circuit.

Run:  python examples/tpcc_verifiable.py
"""

from repro import LitmusClient, LitmusConfig, LitmusServer, TPCCWorkload
from repro.bench.figures import tpcc_profile
from repro.bench.model import LitmusModel
from repro.crypto import RSAGroup


def main() -> None:
    print("== Verifiable TPC-C ==")
    group = RSAGroup.generate(bits=512, seed=b"tpcc")
    workload = TPCCWorkload(
        num_warehouses=2,
        districts_per_warehouse=4,
        customers_per_district=10,
        num_items=40,
        order_lines=5,
        seed=3,
    )
    config = LitmusConfig(
        cc="dr", processing_batch_size=8, batches_per_piece=4, prime_bits=64
    )
    server = LitmusServer(initial=workload.initial_data(), config=config, group=group)
    client = LitmusClient(group, server.digest, config=config)

    txns = workload.generate_mix(24)
    kinds = {}
    for txn in txns:
        kinds[txn.program.name] = kinds.get(txn.program.name, 0) + 1
    print(f"mix: {kinds}")

    response = server.execute_batch(txns)
    verdict = client.verify_response(txns, response)
    print(f"verified: accepted={verdict.accepted}")
    assert verdict.accepted, verdict.reason

    # Inspect a New Order result: total amount plus the oid-sequence check.
    for txn in txns:
        if txn.program.name.startswith("tpcc_new_order"):
            total, oid_ok = verdict.outputs[txn.txn_id]
            print(
                f"new order {txn.txn_id}: total amount {total}, "
                f"order-id sequence check {'passed' if oid_ok else 'FAILED'}"
            )
            break

    # Paper-scale projection for the heavy New Order circuit.
    profile = tpcc_profile("new_order", scale=150)
    model = LitmusModel(profile)
    run = model.litmus_run(81_920, num_provers=75, cc="dr", processing_batch_size=4096)
    print(
        f"modeled full-scale New Order Litmus-DRM throughput: "
        f"{run.throughput:,.1f} txn/s (paper: 280.6 txn/s)"
    )


if __name__ == "__main__":
    main()
