#!/usr/bin/env python3
"""Hybrid real-time mode (Section 9): low-latency marked transactions.

Batched verification has a long proving pipeline; a client that needs an
answer *now* marks a transaction for the interactive path.  Both paths
share one memory digest, so the verification chain stays unbroken.

Run:  python examples/hybrid_realtime.py
"""

from repro import HybridLitmus, LitmusConfig
from repro.crypto import RSAGroup
from repro.db import Transaction
from repro.vc import Program
from repro.vc.program import (
    Add,
    Emit,
    KeyTemplate,
    Param,
    ReadStmt,
    ReadVal,
    WriteStmt,
)

DEPOSIT = Program(
    name="deposit",
    params=("acct", "amount"),
    statements=(
        ReadStmt("balance", KeyTemplate(("acct", Param("acct")))),
        WriteStmt(
            KeyTemplate(("acct", Param("acct"))), Add(ReadVal("balance"), Param("amount"))
        ),
        Emit(Add(ReadVal("balance"), Param("amount"))),
    ),
)


def main() -> None:
    print("== Hybrid batch/interactive verification ==")
    group = RSAGroup.generate(bits=512, seed=b"hybrid")
    config = LitmusConfig(cc="dr", processing_batch_size=8, prime_bits=64)
    hybrid = HybridLitmus(
        initial={("acct", i): 100 for i in range(4)}, config=config, group=group
    )

    txns = [
        Transaction(i, DEPOSIT, {"acct": i % 4, "amount": 10 * i}) for i in range(1, 11)
    ]
    # Transactions 1 and 2 are urgent: serve them interactively.
    outcome = hybrid.run(txns, interactive_ids={1, 2})

    print(f"interactive answers (immediate): {outcome.interactive_outputs}")
    print(
        f"interactive path: {outcome.interactive_seconds * 1e3:.2f} ms virtual; "
        f"batch path: {outcome.batch_seconds:.2f} s virtual"
    )
    print(f"batched remainder verified: {outcome.batch_verdict.accepted}")
    assert outcome.accepted
    print("digest chain spans both modes — one continuous verification history")


if __name__ == "__main__":
    main()
