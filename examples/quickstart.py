#!/usr/bin/env python3
"""Quickstart: a verifiable YCSB session against an untrusted server.

Runs the full Litmus protocol end to end with real cryptography:

1. server and client agree on an RSA group and an initial database digest;
2. the client submits a verification batch of YCSB transactions;
3. the server executes them under deterministic reservation, aggregates the
   memory-integrity proofs per non-conflicting batch, and proves every
   circuit piece;
4. the client matches the circuits, verifies the proofs and the digest
   chain, and accepts the outputs.

Run:  python examples/quickstart.py
"""

from repro import LitmusClient, LitmusConfig, LitmusServer, YCSBWorkload
from repro.crypto import RSAGroup


def main() -> None:
    print("== Litmus quickstart ==")
    group = RSAGroup.generate(bits=512, seed=b"quickstart")

    workload = YCSBWorkload(num_rows=512, theta=0.6, seed=1)
    config = LitmusConfig(
        cc="dr",
        processing_batch_size=32,
        batches_per_piece=4,
        num_provers=4,
        prime_bits=64,
    )
    server = LitmusServer(initial=workload.initial_data(), config=config, group=group)
    client = LitmusClient(group, server.digest, config=config)
    print(f"agreed initial digest: {hex(server.digest)[:18]}...")

    txns = workload.generate(60)
    print(f"submitting a verification batch of {len(txns)} transactions")
    response = server.execute_batch(txns)
    print(
        f"server returned {len(response.pieces)} proof piece(s), "
        f"{response.timing.total_constraints:,} constraints total, "
        f"{response.timing.proof_bytes} proof bytes"
    )

    verdict = client.verify_response(txns, response)
    if not verdict.accepted:
        raise SystemExit(f"client REJECTED the batch: {verdict.reason}")
    print("client verified: circuits matched, proofs valid, digest chain intact")
    print(f"new digest: {hex(verdict.new_digest)[:18]}...")
    sample = dict(list(verdict.outputs.items())[:3])
    print(f"sample outputs: {sample}")
    print(
        f"modeled server throughput at this scale: "
        f"{response.timing.throughput:,.1f} txn/s "
        f"(the paper's full-scale DRM configuration reaches ~17.6k txn/s)"
    )


if __name__ == "__main__":
    main()
