#!/usr/bin/env python3
"""Quickstart: a verifiable YCSB session against an untrusted server.

Runs the full Litmus protocol end to end with real cryptography through the
:class:`~repro.LitmusSession` facade:

1. ``LitmusSession.create`` builds the untrusted server and the verifying
   client over a shared RSA group and initial database digest;
2. ``session.submit`` queues YCSB transactions on behalf of a user;
3. ``session.flush`` drives one verification round — the server executes
   under deterministic reservation, aggregates the memory-integrity proofs
   per non-conflicting batch, and proves every circuit piece; the client
   matches the circuits, verifies the proofs and the digest chain;
4. the returned :class:`~repro.BatchResult` carries the verdict, the
   per-transaction outputs, the timing report, and a metrics snapshot;
   ``session.export`` prints the span/metric view of the same run.

Run:  python examples/quickstart.py
"""

from repro import LitmusConfig, LitmusSession, YCSBWorkload
from repro.crypto import RSAGroup
from repro.obs import ConsoleSummaryExporter


def main() -> None:
    print("== Litmus quickstart ==")
    group = RSAGroup.generate(bits=512, seed=b"quickstart")

    workload = YCSBWorkload(num_rows=512, theta=0.6, seed=1)
    config = LitmusConfig(
        cc="dr",
        processing_batch_size=32,
        batches_per_piece=4,
        num_provers=4,
        prime_bits=64,
    )
    session = LitmusSession.create(
        initial=workload.initial_data(), config=config, group=group
    )
    print(f"agreed initial digest: {hex(session.digest)[:18]}...")

    txns = workload.generate(60)
    for txn in txns:
        session.submit("quickstart", txn.program, **txn.params)
    print(f"submitting a verification batch of {session.queued} transactions")

    result = session.flush()
    if not result.accepted:
        raise SystemExit(f"client REJECTED the batch: {result.reason}")
    timing = result.timing
    print(
        f"server proved {timing.num_pieces} piece(s), "
        f"{timing.total_constraints:,} constraints total, "
        f"{timing.proof_bytes} proof bytes"
    )
    print("client verified: circuits matched, proofs valid, digest chain intact")
    print(f"new digest: {hex(session.digest)[:18]}...")
    sample = dict(list(result.outputs.items())[:3])
    print(f"sample outputs: {sample}")
    print(
        f"modeled server throughput at this scale: "
        f"{timing.throughput:,.1f} txn/s "
        f"(the paper's full-scale DRM configuration reaches ~17.6k txn/s)"
    )

    print("\nobservability view of the same run:")
    session.export(ConsoleSummaryExporter())


if __name__ == "__main__":
    main()
