#!/usr/bin/env python3
"""Trace-based auditing with the Elle-style checker (Section 8.3).

Runs a YCSB workload, converts the committed schedule into a list-append
history, and checks serializability by dependency inference — then shows
the same checker catching a fabricated anomaly, and contrasts the trust
model with Litmus's constant-size proof.

Run:  python examples/elle_audit.py
"""

from repro import Database, ElleChecker, YCSBWorkload, history_from_execution
from repro.verify.history import History, Observation, ObservedTxn


def main() -> None:
    print("== Elle-style serializability audit ==")
    workload = YCSBWorkload(num_rows=256, theta=0.8, seed=5)
    txns = workload.generate(300)
    db = Database(initial=workload.initial_data(), cc="dr", processing_batch_size=64)
    report = db.run(txns)
    history = history_from_execution(report, txns)
    verdict = ElleChecker().check(history)
    print(
        f"audited {verdict.num_txns} transactions in "
        f"{verdict.analysis_seconds * 1e3:.1f} ms "
        f"({verdict.txns_per_second:,.0f} txn/s)"
    )
    print(f"serializable: {verdict.serializable}")
    assert verdict.serializable

    # Fabricate a G1c anomaly: two transactions that each observed the
    # other's append — impossible under any serial order.
    print("\ninjecting a fabricated read-cycle history...")
    forged = History()
    forged.add(
        ObservedTxn(
            txn_id=1,
            appends=((("x",), 10),),
            observations=(Observation(key=("y",), elements=(20,)),),
        )
    )
    forged.add(
        ObservedTxn(
            txn_id=2,
            appends=((("y",), 20),),
            observations=(Observation(key=("x",), elements=(10,)),),
        )
    )
    forged.final_lists = {("x",): (10,), ("y",): (20,)}
    bad = ElleChecker().check(forged)
    print(f"serializable: {bad.serializable}")
    for anomaly in bad.anomalies:
        print(f"anomaly: {anomaly.kind} involving txns {anomaly.txn_ids}")
    assert not bad.serializable

    print(
        "\nnote: Elle requires the full execution trace and a trusted\n"
        "analyzer whose cost grows with the history; the Litmus client\n"
        "verifies one constant-size proof in constant time (Section 8.3)."
    )


if __name__ == "__main__":
    main()
