"""Tests for the Cobra-style polygraph serializability checker."""

from __future__ import annotations

import pytest

from repro.db.database import Database
from repro.errors import ReproError
from repro.verify.polygraph import (
    PolygraphResult,
    RWHistory,
    RWTxn,
    check_serializable,
)

from ..db.helpers import increment


def txn(txn_id, reads=(), writes=()):
    return RWTxn(txn_id=txn_id, reads=tuple(reads), writes=tuple(writes))


class TestPolygraphBasics:
    def test_empty_history(self):
        assert check_serializable(RWHistory()).serializable

    def test_simple_chain(self):
        history = RWHistory(initial={("x",): 0})
        history.add(txn(1, reads=[(("x",), 0)], writes=[(("x",), 10)]))
        history.add(txn(2, reads=[(("x",), 10)], writes=[(("x",), 20)]))
        result = check_serializable(history)
        assert result.serializable
        assert result.order == (1, 2)

    def test_lost_update_rejected(self):
        """Both transactions read the initial value, both write: one of the
        reads is stale under any serial order."""
        history = RWHistory(initial={("x",): 0})
        history.add(txn(1, reads=[(("x",), 0)], writes=[(("x",), 10)]))
        history.add(txn(2, reads=[(("x",), 0)], writes=[(("x",), 20)]))
        result = check_serializable(history)
        assert not result.serializable

    def test_read_of_unwritten_value_rejected(self):
        history = RWHistory(initial={("x",): 0})
        history.add(txn(1, reads=[(("x",), 999)]))
        result = check_serializable(history)
        assert not result.serializable
        assert "unwritten" in result.reason

    def test_write_skew_style_cycle_rejected(self):
        """T1 reads x=0 writes y; T2 reads y=0 writes x; T3 reads both new
        values: any order stales one of the initial reads."""
        history = RWHistory(initial={("x",): 0, ("y",): 0})
        history.add(txn(1, reads=[(("x",), 0)], writes=[(("y",), 11)]))
        history.add(txn(2, reads=[(("y",), 0)], writes=[(("x",), 22)]))
        history.add(txn(3, reads=[(("x",), 22), (("y",), 11)]))
        result = check_serializable(history)
        assert not result.serializable

    def test_constraint_resolution_finds_valid_orientation(self):
        """Two writers of x with a reader between: the checker must orient
        the unknown ww order correctly."""
        history = RWHistory(initial={("x",): 0})
        history.add(txn(1, writes=[(("x",), 10)]))
        history.add(txn(2, reads=[(("x",), 10)]))
        history.add(txn(3, writes=[(("x",), 30)]))
        result = check_serializable(history)
        assert result.serializable
        order = list(result.order)
        # T3 must not sit between T1 and T2 (T2 read T1's value).
        assert not (order.index(1) < order.index(3) < order.index(2))

    def test_duplicate_written_values_rejected(self):
        history = RWHistory()
        history.add(txn(1, writes=[(("x",), 5)]))
        history.add(txn(2, writes=[(("x",), 5)]))
        with pytest.raises(ReproError):
            check_serializable(history)


class TestPolygraphOnRealExecutions:
    def test_dr_execution_certified(self):
        # Increment chains produce strictly increasing (hence unique) values
        # per key — the unique-written-values model Cobra relies on.
        db = Database(cc="dr", processing_batch_size=4)
        txns = [increment(i, i % 3) for i in range(1, 16)]
        report = db.run(txns)
        history = RWHistory.from_execution(report, txns)
        result = check_serializable(history)
        assert result.serializable, result.reason

    def test_2pl_execution_certified(self):
        db = Database(cc="2pl", num_threads=3)
        txns = [increment(i, i % 2) for i in range(1, 13)]
        report = db.run(txns)
        history = RWHistory.from_execution(report, txns)
        result = check_serializable(history)
        assert result.serializable, result.reason

    def test_witness_order_replays(self):
        """The returned serial order is a real witness: replaying it
        reproduces every observed read."""
        db = Database(cc="dr", processing_batch_size=4)
        txns = [increment(i, 0) for i in range(1, 8)]
        report = db.run(txns)
        history = RWHistory.from_execution(report, txns)
        result = check_serializable(history)
        assert result.serializable
        state: dict = {}
        observed = {t.txn_id: dict(t.reads) for t in history.txns}
        writes = {t.txn_id: dict(t.writes) for t in history.txns}
        for txn_id in result.order:
            for key, value in observed[txn_id].items():
                assert state.get(key, 0) == value
            state.update(writes[txn_id])
