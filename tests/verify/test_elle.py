"""Tests for the Elle-style serializability checker."""

from __future__ import annotations

from repro.db.database import Database
from repro.verify.cycles import analyze
from repro.verify.elle import ElleChecker, history_from_execution
from repro.verify.history import History, Observation, ObservedTxn

from ..db.helpers import increment, read_only, transfer


def txn(txn_id, appends=(), observations=()):
    return ObservedTxn(
        txn_id=txn_id,
        appends=tuple(appends),
        observations=tuple(
            Observation(key=key, elements=tuple(elements))
            for key, elements in observations
        ),
    )


class TestAnalyze:
    def test_empty_history_serializable(self):
        history = History()
        assert analyze(history).serializable

    def test_serial_appends_serializable(self):
        history = History()
        history.add(txn(1, appends=[(("x",), 1)]))
        history.add(txn(2, appends=[(("x",), 2)], observations=[(("x",), (1,))]))
        history.final_lists = {("x",): (1, 2)}
        analysis = analyze(history)
        assert analysis.serializable
        assert analysis.graph.has_edge(1, 2)

    def test_g0_write_cycle_detected(self):
        # T1 then T2 on x, but T2 then T1 on y: a pure write-order cycle.
        history = History()
        history.add(txn(1, appends=[(("x",), 1), (("y",), 4)]))
        history.add(txn(2, appends=[(("x",), 2), (("y",), 3)]))
        history.final_lists = {("x",): (1, 2), ("y",): (3, 4)}
        analysis = analyze(history)
        assert not analysis.serializable
        assert analysis.anomalies[0].kind == "G0"
        assert analysis.anomalies[0].txn_ids == (1, 2)

    def test_g1c_read_cycle_detected(self):
        # T1 observed T2's append; T2 observed T1's append: wr in both ways.
        history = History()
        history.add(
            txn(1, appends=[(("x",), 1)], observations=[(("y",), (2,))])
        )
        history.add(
            txn(2, appends=[(("y",), 2)], observations=[(("x",), (1,))])
        )
        history.final_lists = {("x",): (1,), ("y",): (2,)}
        analysis = analyze(history)
        assert not analysis.serializable
        assert analysis.anomalies[0].kind == "G1c"

    def test_rw_antidependency_edge(self):
        # T1 read x before T2's append: T1 -> T2 (rw).
        history = History()
        history.add(txn(1, observations=[(("x",), ())]))
        history.add(txn(2, appends=[(("x",), 1)]))
        history.final_lists = {("x",): (1,)}
        analysis = analyze(history)
        assert analysis.graph.has_edge(1, 2)
        assert analysis.serializable

    def test_non_prefix_observation_flagged(self):
        # Observing (2,) when the final list is (1, 2) is impossible.
        history = History()
        history.add(txn(1, appends=[(("x",), 1)]))
        history.add(txn(2, appends=[(("x",), 2)], observations=[(("x",), (2,))]))
        history.final_lists = {("x",): (1, 2)}
        analysis = analyze(history)
        assert not analysis.serializable
        assert analysis.inconsistent_observations

    def test_duplicate_append_flagged(self):
        history = History()
        history.add(txn(1, appends=[(("x",), 1)]))
        history.add(txn(2, appends=[(("x",), 1)]))
        history.final_lists = {("x",): (1,)}
        analysis = analyze(history)
        assert not analysis.serializable


class TestHistoryFromExecution:
    def test_dr_execution_is_serializable(self):
        db = Database(initial={("acct", i): 50 for i in range(4)}, cc="dr",
                      processing_batch_size=8)
        txns = [transfer(i, i % 4, (i + 1) % 4, 1) for i in range(1, 25)]
        report = db.run(txns)
        history = history_from_execution(report, txns)
        checker = ElleChecker()
        verdict = checker.check(history)
        assert verdict.serializable, (verdict.anomalies, verdict.inconsistencies)
        assert verdict.num_txns == 24
        assert verdict.analysis_seconds >= 0

    def test_2pl_execution_is_serializable(self):
        db = Database(cc="2pl", num_threads=4)
        txns = [increment(i, i % 3) for i in range(1, 25)]
        report = db.run(txns)
        history = history_from_execution(report, txns)
        verdict = ElleChecker().check(history)
        assert verdict.serializable

    def test_mixed_readers_and_writers(self):
        db = Database(cc="dr", processing_batch_size=4)
        txns = []
        for i in range(1, 13):
            txns.append(increment(i, 1) if i % 2 else read_only(i, 1))
        report = db.run(txns)
        history = history_from_execution(report, txns)
        verdict = ElleChecker().check(history)
        assert verdict.serializable

    def test_throughput_metric(self):
        db = Database(cc="dr", processing_batch_size=16)
        txns = [increment(i, i) for i in range(1, 40)]
        report = db.run(txns)
        history = history_from_execution(report, txns)
        verdict = ElleChecker().check(history)
        assert verdict.txns_per_second > 0
