"""Tests for anomaly classification extensions and history persistence."""

from __future__ import annotations

from repro.crypto.multiset_hash import MultisetHash
from repro.verify.cycles import analyze
from repro.verify.history import History, Observation, ObservedTxn


def txn(txn_id, appends=(), observations=()):
    return ObservedTxn(
        txn_id=txn_id,
        appends=tuple(appends),
        observations=tuple(
            Observation(key=key, elements=tuple(elements))
            for key, elements in observations
        ),
    )


class TestG2Classification:
    def test_write_skew_is_g2(self):
        """Classic write skew: two txns each read the key the other writes,
        observing the pre-state — a pure anti-dependency cycle (G2)."""
        history = History()
        history.add(
            txn(1, appends=[(("x",), 1)], observations=[(("y",), ())])
        )
        history.add(
            txn(2, appends=[(("y",), 2)], observations=[(("x",), ())])
        )
        history.final_lists = {("x",): (1,), ("y",): (2,)}
        analysis = analyze(history)
        assert not analysis.serializable
        assert analysis.anomalies[0].kind == "G2"
        assert set(analysis.anomalies[0].edge_kinds) == {"rw"}

    def test_mixed_rw_ww_without_wr_is_g2(self):
        history = History()
        # T1 -> T2 via ww on x; T2 -> T1 via rw on y.
        history.add(txn(1, appends=[(("x",), 1)]))
        history.add(
            txn(2, appends=[(("x",), 2)], observations=[(("y",), ())])
        )
        # T1 appends to y after T2 observed it empty.
        history.txns[0] = txn(1, appends=[(("x",), 1), (("y",), 3)])
        history.final_lists = {("x",): (1, 2), ("y",): (3,)}
        analysis = analyze(history)
        assert not analysis.serializable
        assert analysis.anomalies[0].kind == "G2"


class TestHistoryPersistence:
    def test_json_roundtrip(self):
        history = History()
        history.add(
            txn(
                1,
                appends=[(("t", 3), 10)],
                observations=[(("t", 3), (10,)), (("u", 1), ())],
            )
        )
        history.final_lists = {("t", 3): (10,), ("u", 1): ()}
        restored = History.from_json(history.to_json())
        assert restored.num_txns == 1
        assert restored.txns[0].appends == ((("t", 3), 10),)
        assert restored.final_lists == history.final_lists
        # Analysis verdicts agree on the restored history.
        assert analyze(restored).serializable == analyze(history).serializable

    def test_offline_audit_flow(self):
        from repro.db.database import Database
        from repro.verify.elle import ElleChecker, history_from_execution

        from ..db.helpers import increment

        db = Database(cc="dr", processing_batch_size=4)
        txns = [increment(i, i % 2) for i in range(1, 9)]
        report = db.run(txns)
        shipped = history_from_execution(report, txns).to_json()
        # The auditor on the other side:
        verdict = ElleChecker().check(History.from_json(shipped))
        assert verdict.serializable


class TestMultisetHash:
    def test_order_independent(self):
        a = MultisetHash.of([1, 2, 3])
        b = MultisetHash.of([3, 1, 2])
        assert a == b

    def test_multiplicity_matters(self):
        assert MultisetHash.of([1, 1]) != MultisetHash.of([1])

    def test_incremental_add_remove(self):
        base = MultisetHash.of(["a", "b"])
        grown = base.add("c")
        assert grown == MultisetHash.of(["a", "b", "c"])
        assert grown.remove("c") == base

    def test_union(self):
        assert MultisetHash.of([1, 2]).union(MultisetHash.of([3])) == MultisetHash.of(
            [1, 2, 3]
        )

    def test_no_lookup_proofs_by_design(self):
        """The digest alone cannot answer membership — the reason Litmus
        needs the accumulator-based AD instead (unit-level ablation)."""
        digest = MultisetHash.of([1, 2, 3])
        assert not hasattr(digest, "prove_lookup")
        assert not hasattr(digest, "prove_no_key")
