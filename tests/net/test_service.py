"""The networked service: overload, deadlines, graceful shutdown, recovery.

The three acceptance stories from the robustness issue are here:

- **overload** — a full admission queue sheds with a typed ``Overloaded``
  carrying a retry-after hint, nothing desyncs, and a ``RemoteSession``
  with a ``RetryPolicy`` eventually commits everything;
- **graceful shutdown** — work in flight when ``shutdown()`` starts is
  drained and durably acked through the WAL, new work is refused typed,
  new connections are refused, and ``LitmusSession.recover`` finds zero
  lost acknowledged batches;
- **deadlines** — a client deadline fires locally, the server cancels the
  stale op without touching the session, the transactions survive for the
  next flush, and the ``net.*`` metrics land in the JSONL export.

The worker gate (the service's ``on_op`` hook) makes all three
deterministic: tests hold the single session worker at an op boundary,
fill or expire the queue at leisure, then release it.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.core import LitmusConfig, LitmusSession, RetryPolicy
from repro.core.session import DurabilityConfig
from repro.errors import (
    ConnectionLost,
    DeadlineExceeded,
    Overloaded,
    RemoteError,
    ServiceUnavailable,
)
from repro.net import LitmusService, RemoteSession, ServiceConfig
from repro.obs import JsonLinesExporter, read_jsonl
from repro.obs.metrics import MetricsRegistry
from repro.sim import NetworkModel, SimulatedChannel
from repro.vc.program import (
    Add,
    Emit,
    KeyTemplate,
    Param,
    Program,
    ReadStmt,
    ReadVal,
    Sub,
    WriteStmt,
)

TRANSFER = Program(
    name="net-transfer",
    params=("src", "dst", "amount"),
    statements=(
        ReadStmt("s", KeyTemplate(("acct", Param("src")))),
        ReadStmt("d", KeyTemplate(("acct", Param("dst")))),
        WriteStmt(
            KeyTemplate(("acct", Param("src"))), Sub(ReadVal("s"), Param("amount"))
        ),
        WriteStmt(
            KeyTemplate(("acct", Param("dst"))), Add(ReadVal("d"), Param("amount"))
        ),
        Emit(Add(ReadVal("s"), ReadVal("d"))),
    ),
)

NUM_ACCOUNTS = 8
CONFIG = LitmusConfig(
    cc="dr", processing_batch_size=2, batches_per_piece=2, prime_bits=64
)


class WorkerGate:
    """Deterministic control of the service worker via the on_op hook."""

    def __init__(self):
        self.open = threading.Event()
        self.open.set()
        self.entered = threading.Event()
        self.kinds: list[str] = []

    def __call__(self, kind: str) -> None:
        self.kinds.append(kind)
        self.entered.set()
        self.open.wait(timeout=30.0)

    def hold(self) -> None:
        self.open.clear()
        self.entered.clear()

    def release(self) -> None:
        self.open.set()


@pytest.fixture
def harness(group, tmp_path):
    """A running service over a fresh session; yields a small toolbox."""
    started = []

    class Harness:
        def __init__(self):
            self.registry = MetricsRegistry()
            self.gate = WorkerGate()
            self.session = None
            self.service = None
            self.address = None

        def start(self, durable=False, **config):
            durability = (
                DurabilityConfig(directory=str(tmp_path / "wal"))
                if durable
                else None
            )
            self.session = LitmusSession.create(
                initial={("acct", i): 100 for i in range(NUM_ACCOUNTS)},
                config=CONFIG,
                group=group,
                registry=self.registry,
                durability=durability,
            )
            self.service = LitmusService(
                self.session,
                programs=[TRANSFER],
                config=ServiceConfig(**config),
                registry=self.registry,
                on_op=self.gate,
            )
            self.address = self.service.start()
            started.append(self.service)
            return self.address

        def client(self, **kwargs):
            host, port = self.address
            kwargs.setdefault("registry", self.registry)
            return RemoteSession(host, port, **kwargs)

    yield Harness()
    for service in started:
        service.shutdown()


class TestHappyPath:
    def test_submit_flush_resolves_and_digests_match(self, harness):
        harness.start()
        client = harness.client()
        tickets = [
            client.submit("alice", "net-transfer", src=i, dst=i + 1, amount=10)
            for i in range(3)
        ]
        result = client.flush()
        assert result.accepted and result.num_txns == 3
        assert all(ticket.resolved and ticket.accepted for ticket in tickets)
        assert client.digest == harness.session.digest
        assert client.queued == 0
        client.close()

    def test_two_clients_share_one_verified_history(self, harness):
        harness.start()
        a, b = harness.client(), harness.client()
        ta = a.submit("alice", "net-transfer", src=0, dst=1, amount=5)
        tb = b.submit("bob", "net-transfer", src=2, dst=3, amount=5)
        # a's flush batches everything staged; b resolves from the journal.
        assert a.flush().accepted
        assert b.flush().accepted
        assert ta.accepted and tb.accepted
        assert a.digest == b.digest == harness.session.digest
        a.close()
        b.close()

    def test_unknown_program_is_a_typed_remote_error(self, harness):
        harness.start()
        client = harness.client()
        with pytest.raises(RemoteError) as excinfo:
            client.submit("alice", "no-such-proc", x=1)
        assert excinfo.value.code == "unknown_program"
        client.close()

    def test_status_and_ping(self, harness):
        harness.start()
        client = harness.client()
        assert client.ping() < 5.0
        status = client.status()
        assert status["draining"] is False
        assert status["connections"] == 1
        assert status["digest"] == harness.session.digest
        client.close()


class TestOverload:
    def test_full_queue_sheds_typed_and_retry_policy_recovers(self, harness):
        harness.start(queue_limit=2)
        warmup = harness.client()
        warmup.submit("warm", "net-transfer", src=6, dst=7, amount=1)

        # Hold the worker, then stuff the 2-deep admission queue through
        # no-retry clients running in their own threads.
        harness.gate.hold()
        blocked_clients = [harness.client() for _ in range(2)]
        blocker = harness.client()
        threads = [
            threading.Thread(
                target=lambda: blocker.submit(
                    "blocker", "net-transfer", src=0, dst=1, amount=1
                )
            )
        ]
        threads[0].start()
        assert harness.gate.entered.wait(timeout=10.0)  # worker held mid-op

        for i, client in enumerate(blocked_clients):
            thread = threading.Thread(
                target=lambda c=client, n=i: c.submit(
                    f"fill{n}", "net-transfer", src=2, dst=3, amount=1
                )
            )
            thread.start()
            threads.append(thread)
        deadline = time.monotonic() + 10.0
        while (
            harness.service._queue.qsize() < 2 and time.monotonic() < deadline
        ):
            time.sleep(0.01)
        assert harness.service._queue.qsize() == 2

        shed_client = harness.client()
        with pytest.raises(Overloaded) as excinfo:
            shed_client.submit("shed", "net-transfer", src=4, dst=5, amount=1)
        assert excinfo.value.retry_after > 0.0
        assert harness.registry.counter("net.sheds").value >= 1

        # A retry-policy client keeps re-sending (honoring the hint) and
        # eventually commits once the worker is released.
        releaser = threading.Timer(0.2, harness.gate.release)
        releaser.start()
        patient = harness.client(
            retry_policy=RetryPolicy(max_attempts=50, backoff=0.02)
        )
        ticket = patient.submit("patient", "net-transfer", src=4, dst=5, amount=1)
        for thread in threads:
            thread.join(timeout=10.0)
        releaser.join()

        result = patient.flush()
        assert result.accepted
        assert ticket.accepted
        # No desync anywhere: every client converges on the session digest.
        assert patient.digest == harness.session.digest
        for client in blocked_clients:
            assert client.flush().accepted
            assert client.digest == harness.session.digest
        assert warmup.flush().accepted
        assert blocker.flush().accepted
        for client in (warmup, blocker, patient, shed_client, *blocked_clients):
            client.close()

    def test_connection_limit_refuses_with_retry_after(self, harness):
        harness.start(max_connections=1)
        first = harness.client()
        with pytest.raises((Overloaded, ConnectionLost)) as excinfo:
            harness.client()
        if isinstance(excinfo.value, Overloaded):
            assert excinfo.value.retry_after > 0.0
        assert harness.registry.counter("net.connections_refused").value == 1
        first.close()

    def test_sheds_land_in_the_jsonl_export(self, harness, tmp_path):
        harness.start(queue_limit=1)
        harness.gate.hold()
        blocker = harness.client()
        filler = harness.client()
        t = threading.Thread(
            target=lambda: blocker.submit(
                "blocker", "net-transfer", src=0, dst=1, amount=1
            )
        )
        t.start()
        harness.gate.entered.wait(timeout=10.0)
        t2 = threading.Thread(
            target=lambda: _swallow(
                Overloaded,
                lambda: filler.submit(
                    "fill", "net-transfer", src=0, dst=1, amount=1
                ),
            )
        )
        t2.start()
        deadline = time.monotonic() + 10.0
        while (
            harness.service._queue.qsize() < 1 and time.monotonic() < deadline
        ):
            time.sleep(0.01)
        shed = harness.client()
        with pytest.raises(Overloaded):
            shed.submit("shed", "net-transfer", src=0, dst=1, amount=1)
        harness.gate.release()
        t.join(timeout=10.0)
        t2.join(timeout=10.0)

        path = tmp_path / "net-metrics.jsonl"
        JsonLinesExporter(str(path)).export((), harness.registry.snapshot())
        names = {
            record["name"]
            for record in read_jsonl(str(path))
            if record.get("kind") == "metric"
        }
        assert {
            "net.sheds",
            "net.queue_depth",
            "net.connections_active",
        } <= names
        for client in (blocker, filler, shed):
            client.close()


def _swallow(exc_type, fn):
    try:
        fn()
    except exc_type:
        pass


class TestDeadlines:
    def test_client_deadline_cancels_cleanly_and_work_survives(
        self, harness, tmp_path
    ):
        harness.start()
        client = harness.client()
        ticket = client.submit("alice", "net-transfer", src=0, dst=1, amount=10)
        digest_before = harness.session.digest

        harness.gate.hold()
        with pytest.raises(DeadlineExceeded):
            client.flush(timeout=0.3)
        # Cancelled, not half-committed: the ticket is unresolved, the
        # transaction still queued client-side, the digest unmoved.
        assert not ticket.resolved
        assert client.queued == 1
        assert harness.session.digest == digest_before
        assert harness.registry.counter("net.client_deadline_hits").value >= 1

        # The stale flush op is still in the worker's hands; releasing the
        # gate lets the server notice the expired deadline and drop it
        # without touching the session.
        harness.gate.release()
        deadline = time.monotonic() + 10.0
        while (
            harness.registry.counter("net.deadline_hits").value < 1
            and time.monotonic() < deadline
        ):
            time.sleep(0.01)
        assert harness.registry.counter("net.deadline_hits").value >= 1
        assert harness.session.digest == digest_before

        # A fresh flush with breathing room commits the surviving work.
        result = client.flush(timeout=30.0)
        assert result.accepted and result.num_txns == 1
        assert ticket.accepted
        assert client.digest == harness.session.digest != digest_before

        # The deadline trail is visible in the standard JSONL export.
        path = tmp_path / "deadline-metrics.jsonl"
        JsonLinesExporter(str(path)).export((), harness.registry.snapshot())
        names = {
            record["name"]
            for record in read_jsonl(str(path))
            if record.get("kind") == "metric"
        }
        assert {
            "net.deadline_hits",
            "net.queue_depth",
            "net.connections_active",
        } <= names
        client.close()

    def test_expired_op_is_shed_before_touching_the_session(self, harness):
        harness.start(default_timeout=0.2)
        client = harness.client()
        client.submit("alice", "net-transfer", src=0, dst=1, amount=10)
        batches_before = harness.session.batches_verified
        harness.gate.hold()
        with pytest.raises((DeadlineExceeded, ConnectionLost)):
            client.flush(timeout=0.25)
        harness.gate.release()
        time.sleep(0.3)
        assert harness.session.batches_verified == batches_before
        client.close()


class TestGracefulShutdown:
    def test_drain_acks_in_flight_work_and_recovery_finds_it(
        self, harness, tmp_path, group
    ):
        harness.start(durable=True)
        client = harness.client()
        tickets = [
            client.submit("alice", "net-transfer", src=i, dst=i + 1, amount=5)
            for i in range(2)
        ]
        bystander = harness.client()

        # Put a flush in flight: the op reaches the worker, which we hold
        # at the boundary — exactly the moment a SIGTERM would land.
        harness.gate.hold()
        flush_result = {}
        flusher = threading.Thread(
            target=lambda: flush_result.update(result=client.flush())
        )
        flusher.start()
        assert harness.gate.entered.wait(timeout=10.0)

        shutdown_thread = threading.Thread(target=harness.service.shutdown)
        shutdown_thread.start()
        deadline = time.monotonic() + 10.0
        while not harness.service.draining and time.monotonic() < deadline:
            time.sleep(0.01)
        assert harness.service.draining

        # New work is refused typed while draining ...
        with pytest.raises((ServiceUnavailable, ConnectionLost)):
            bystander.submit("bob", "net-transfer", src=2, dst=3, amount=1)

        # ... but the in-flight batch completes and acks durably.
        harness.gate.release()
        flusher.join(timeout=30.0)
        shutdown_thread.join(timeout=30.0)
        assert not shutdown_thread.is_alive()
        result = flush_result.get("result")
        assert result is not None and result.accepted
        assert all(ticket.accepted for ticket in tickets)
        acked_digest = client.digest
        client.close()
        bystander.close()

        # New connections are refused after shutdown.
        host, port = harness.address
        with pytest.raises(ConnectionLost):
            RemoteSession(host, port, connect_timeout=1.0)

        # Zero lost acknowledged batches: a fresh process recovers the
        # directory to exactly the digest the client holds.
        recovered = LitmusSession.recover(
            str(tmp_path / "wal"), [TRANSFER], group=group
        )
        assert recovered.digest == acked_digest
        assert recovered.recovery_report.replayed_batches >= 1
        recovered.close()

    def test_shutdown_is_idempotent(self, harness):
        harness.start()
        harness.service.shutdown()
        harness.service.shutdown()
        assert harness.service.draining


class TestIdempotencyAndReaping:
    def test_duplicate_submit_op_dedups(self, harness):
        harness.start()
        client = harness.client()
        ticket = client.submit("alice", "net-transfer", src=0, dst=1, amount=5)
        # Re-send the identical submit op by hand (a retry after a lost
        # response): the op cache must answer with the same txn id and the
        # server must not stage the work twice.
        from repro.net.codec import MSG_SUBMIT, MSG_TICKET

        frame = client._roundtrip(
            MSG_SUBMIT,
            {
                "op": 1,  # the first submit's op id
                "user": "alice",
                "program": "net-transfer",
                "params": {"src": 0, "dst": 1, "amount": 5},
                "timeout": 5.0,
            },
            MSG_TICKET,
            None,
        )
        assert frame.payload["txn_id"] == ticket.txn_id
        assert harness.registry.counter("net.op_replays").value == 1
        result = client.flush()
        assert result.accepted and result.num_txns == 1
        client.close()

    def test_lost_result_resolves_from_the_journal(self, harness):
        harness.start()
        client = harness.client()
        ticket = client.submit("alice", "net-transfer", src=0, dst=1, amount=5)
        assert client.flush().accepted
        batches = harness.session.batches_verified
        # A second flush naming the already-resolved txn id (the retry a
        # client whose result frame was lost would send) answers from the
        # journal without re-executing anything.
        from repro.net.codec import MSG_FLUSH, MSG_RESULT

        frame = client._roundtrip(
            MSG_FLUSH,
            {"op": 99, "txns": [ticket.txn_id], "timeout": 5.0},
            MSG_RESULT,
            None,
        )
        entry = frame.payload["txns"][str(ticket.txn_id)]
        assert entry["accepted"] is True
        assert tuple(entry["outputs"]) == ticket.outputs
        assert harness.session.batches_verified == batches
        client.close()

    def test_idle_connections_are_reaped(self, harness):
        harness.start(idle_timeout=0.2)
        client = harness.client()
        deadline = time.monotonic() + 10.0
        while (
            harness.registry.counter("net.idle_reaped").value < 1
            and time.monotonic() < deadline
        ):
            time.sleep(0.05)
        assert harness.registry.counter("net.idle_reaped").value == 1
        # The reaped client notices on its next call and reconnects
        # transparently when it has a retry policy.
        patient = harness.client(
            retry_policy=RetryPolicy(max_attempts=3, backoff=0.0)
        )
        client.close()
        patient.close()

    def test_heartbeats_keep_a_quiet_connection_alive(self, harness):
        harness.start(idle_timeout=0.4)
        client = harness.client()
        for _ in range(4):
            time.sleep(0.15)
            client.ping()
        assert harness.registry.counter("net.idle_reaped").value == 0
        assert harness.registry.counter("net.heartbeats").value == 4
        client.close()


class TestProxyMode:
    def test_lossy_client_channel_still_commits_everything(self, harness):
        harness.start()
        channel = SimulatedChannel(
            model=NetworkModel(rtt_seconds=0.0),
            seed=1234,
            drop_probability=0.25,
        )
        client = harness.client(
            channel=channel,
            io_timeout=0.3,
            retry_policy=RetryPolicy(max_attempts=30, backoff=0.01),
        )
        tickets = [
            client.submit("alice", "net-transfer", src=i, dst=i + 1, amount=2)
            for i in range(3)
        ]
        result = client.flush()
        assert result.accepted
        assert all(ticket.accepted for ticket in tickets)
        assert client.digest == harness.session.digest
        assert channel.dropped >= 1  # the seed really exercised loss
        client.close()


class TestRecover:
    """``RemoteSession.recover``: the journal-backed resolve round.

    The state under test is a client whose connection died mid-flush with
    calls stranded in ``_outstanding`` — some the server journaled before
    the loss, some it never saw.  The tests reconstruct that state
    directly (white-box, since tearing a real socket at the exact frame
    boundary is nondeterministic) and drive the public ``recover()``.
    """

    def _stranded_call(self, client, txn_id, **params):
        from repro.core.session import UserTicket
        from repro.net.client import _PendingCall

        call = _PendingCall(
            user="alice",
            program="net-transfer",
            params=params,
            ticket=UserTicket(user="alice", txn_id=txn_id),
            submit_op=client._next_op(),
            txn_id=txn_id,
        )
        client._outstanding[txn_id] = call
        return call

    def test_recover_resolves_journaled_and_recycles_unknown(self, harness):
        harness.start()
        a = harness.client()
        ticket = a.submit("alice", "net-transfer", src=0, dst=1, amount=5)
        assert a.flush().accepted

        # A second client that "died" holding two outstanding calls: one
        # the server journaled (a's txn), one it never heard of.
        b = harness.client(client_id="phoenix")
        journaled = self._stranded_call(
            b, ticket.txn_id, src=0, dst=1, amount=5
        )
        lost = self._stranded_call(b, 999_999, src=2, dst=3, amount=7)

        assert b.recover() == 1
        # journaled outcome resolved exactly as a flush would have
        assert journaled.ticket.resolved and journaled.ticket.accepted
        assert journaled.ticket.outputs == ticket.outputs
        # the unknown id was recycled into the unsent queue for resubmission
        assert not b._outstanding
        assert lost.txn_id is None and lost in b._unsent
        assert b.queued == 1
        assert harness.registry.counter("net.client_resubmits").value == 1
        # ... and the next flush commits the recycled call exactly once.
        result = b.flush()
        assert result.accepted and lost.ticket.accepted
        assert b.digest == harness.session.digest
        a.close()
        b.close()

    def test_recover_leaves_staged_work_outstanding(self, harness):
        harness.start()
        a = harness.client()
        staged = a.submit("alice", "net-transfer", src=4, dst=5, amount=3)

        # staged but never flushed: the server reports it pending, so
        # recover() must neither resolve nor resubmit it.
        b = harness.client(client_id="phoenix")
        call = self._stranded_call(b, staged.txn_id, src=4, dst=5, amount=3)
        assert b.recover() == 0
        assert list(b._outstanding) == [staged.txn_id]
        assert not b._unsent

        # the next flush drains the staged batch and resolves the ticket
        result = b.flush()
        assert result.accepted and call.ticket.accepted
        a.close()
        b.close()

    def test_recover_with_nothing_outstanding_is_a_no_op(self, harness):
        harness.start()
        client = harness.client()
        assert client.recover() == 0
        assert client.queued == 0
        client.close()


class TestShardedService:
    """A sharded session behind the same wire protocol (DESIGN.md §14)."""

    def _sharded(self, group, shards=2):
        from repro.core import ShardedSession

        return ShardedSession.create(
            initial={("acct", i): 100 for i in range(NUM_ACCOUNTS)},
            config=CONFIG,
            num_shards=shards,
            group=group,
            registry=MetricsRegistry(),
        )

    def test_client_receives_the_full_digest_vector(self, group):
        from repro.core import DigestVector

        session = self._sharded(group)
        service = LitmusService(
            session,
            programs=[TRANSFER],
            config=ServiceConfig(num_shards=2),
            registry=MetricsRegistry(),
        )
        host, port = service.start()
        try:
            client = RemoteSession(host, port, registry=MetricsRegistry())
            client.submit("alice", "net-transfer", src=0, dst=1, amount=5)
            assert client.flush().accepted
            # the versioned wire field carried every per-shard component,
            # and the fold stays comparable to the scalar digest
            assert isinstance(client.digest, DigestVector)
            assert client.digest.shards == session.digest.shards
            assert len(client.digest.shards) == 2
            assert client.digest == session.digest
            status = client.status()
            assert status["shards"] == 2
            assert status["digest"] == int(session.digest)
            client.close()
        finally:
            service.shutdown()
            session.close()

    def test_shard_count_mismatch_fails_fast(self, group):
        from repro.errors import ReproError

        session = self._sharded(group)
        try:
            with pytest.raises(ReproError, match="shard"):
                LitmusService(
                    session,
                    programs=[TRANSFER],
                    config=ServiceConfig(num_shards=4),
                    registry=MetricsRegistry(),
                )
        finally:
            session.close()
