"""The wire codec: framing, versioning, checksums, and hostile input.

A codec bug is a protocol desync, so these tests pin the byte layout
(magic, version, type, length, crc) and every rejection path — bad magic,
future versions, unknown types, oversized lengths, corrupt payloads,
truncated streams — as typed errors, never silent misparses.
"""

from __future__ import annotations

import json
import struct
import zlib

import pytest

from repro.errors import ConnectionLost, WireFormatError
from repro.net import MAX_FRAME_BYTES, PROTOCOL_VERSION, decode_frame, encode_frame
from repro.net.codec import (
    MSG_ERROR,
    MSG_HELLO,
    MSG_SUBMIT,
    message_name,
    outputs_from_wire,
    outputs_to_wire,
)

HEADER = struct.Struct(">4sBBII")


class TestRoundTrip:
    def test_frame_round_trips(self):
        payload = {"user": "alice", "params": {"src": 0, "amount": 120}}
        data = encode_frame(MSG_SUBMIT, payload)
        frame, consumed = decode_frame(data)
        assert consumed == len(data)
        assert frame.msg_type == MSG_SUBMIT
        assert frame.payload == payload

    def test_empty_payload_defaults_to_object(self):
        frame, _ = decode_frame(encode_frame(MSG_HELLO))
        assert frame.payload == {}

    def test_big_integers_round_trip_exactly(self):
        # Digests are hundreds of bits; the JSON layer must not lose them.
        digest = 2**521 - 1
        frame, _ = decode_frame(encode_frame(MSG_ERROR, {"digest": digest}))
        assert frame.payload["digest"] == digest

    def test_header_layout_is_pinned(self):
        data = encode_frame(MSG_HELLO, {"a": 1})
        magic, version, msg_type, length, crc = HEADER.unpack_from(data)
        assert magic == b"LNP1"
        assert version == PROTOCOL_VERSION
        assert msg_type == MSG_HELLO
        assert length == len(data) - HEADER.size
        assert crc == zlib.crc32(data[HEADER.size :]) & 0xFFFFFFFF

    def test_consumed_supports_back_to_back_frames(self):
        stream = encode_frame(MSG_HELLO, {"n": 1}) + encode_frame(
            MSG_SUBMIT, {"n": 2}
        )
        first, consumed = decode_frame(stream)
        second, _ = decode_frame(stream[consumed:])
        assert (first.payload["n"], second.payload["n"]) == (1, 2)


class TestRejections:
    def test_bad_magic(self):
        data = b"XXXX" + encode_frame(MSG_HELLO)[4:]
        with pytest.raises(WireFormatError, match="magic"):
            decode_frame(data)

    def test_future_version(self):
        body = b"{}"
        data = HEADER.pack(b"LNP1", 99, MSG_HELLO, len(body), zlib.crc32(body)) + body
        with pytest.raises(WireFormatError, match="version 99"):
            decode_frame(data)

    def test_unknown_message_type(self):
        body = b"{}"
        data = HEADER.pack(b"LNP1", 1, 200, len(body), zlib.crc32(body)) + body
        with pytest.raises(WireFormatError, match="message type 200"):
            decode_frame(data)
        with pytest.raises(WireFormatError):
            encode_frame(200, {})

    def test_oversized_length_prefix(self):
        data = HEADER.pack(b"LNP1", 1, MSG_HELLO, MAX_FRAME_BYTES + 1, 0)
        with pytest.raises(WireFormatError, match="cap"):
            decode_frame(data)

    def test_corrupt_payload_fails_the_checksum(self):
        data = bytearray(encode_frame(MSG_SUBMIT, {"user": "alice"}))
        data[-1] ^= 0xFF
        with pytest.raises(WireFormatError, match="checksum"):
            decode_frame(bytes(data))

    def test_crc_names_the_message_kind(self):
        data = bytearray(encode_frame(MSG_SUBMIT, {"user": "alice"}))
        data[-1] ^= 0xFF
        with pytest.raises(WireFormatError, match=message_name(MSG_SUBMIT)):
            decode_frame(bytes(data))

    def test_non_object_payload_rejected(self):
        body = b"[1,2,3]"
        data = HEADER.pack(
            b"LNP1", 1, MSG_HELLO, len(body), zlib.crc32(body)
        ) + body
        with pytest.raises(WireFormatError, match="object"):
            decode_frame(data)

    def test_undecodable_payload_rejected(self):
        body = b"\xff\xfe{"
        data = HEADER.pack(
            b"LNP1", 1, MSG_HELLO, len(body), zlib.crc32(body)
        ) + body
        with pytest.raises(WireFormatError, match="JSON"):
            decode_frame(data)


class TestTruncation:
    def test_truncated_header_is_connection_lost(self):
        with pytest.raises(ConnectionLost):
            decode_frame(encode_frame(MSG_HELLO)[:7])

    def test_truncated_payload_is_connection_lost(self):
        data = encode_frame(MSG_SUBMIT, {"user": "alice"})
        with pytest.raises(ConnectionLost):
            decode_frame(data[:-3])


class TestOutputMaps:
    def test_round_trip(self):
        outputs = {7: (1, 2, 3), 12: ()}
        assert outputs_from_wire(outputs_to_wire(outputs)) == outputs

    def test_wire_shape_is_json_safe(self):
        wire = outputs_to_wire({5: (10,)})
        assert wire == {"5": [10]}
        assert json.loads(json.dumps(wire)) == wire

    def test_malformed_keys_rejected(self):
        with pytest.raises(WireFormatError):
            outputs_from_wire({"not-a-number": [1]})
