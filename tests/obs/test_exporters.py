"""Unit tests for repro.obs exporters: JSONL round-trip, console summary."""

from __future__ import annotations

import io
import subprocess
import sys
from pathlib import Path

from repro.obs import (
    ConsoleSummaryExporter,
    JsonLinesExporter,
    MetricsRegistry,
    NoopExporter,
    Tracer,
    export_all,
    read_jsonl,
)

REPO_ROOT = Path(__file__).resolve().parents[2]


def _sample_data():
    tracer = Tracer()
    with tracer.span("batch", num_txns=2):
        with tracer.span("execute"):
            pass
    registry = MetricsRegistry()
    registry.counter("db.committed").inc(2)
    registry.histogram("snark.prove_seconds").observe(0.25)
    return tracer.finished(), registry.snapshot()


class TestJsonLines:
    def test_round_trip(self, tmp_path):
        spans, metrics = _sample_data()
        path = tmp_path / "obs.jsonl"
        JsonLinesExporter(str(path)).export(spans, metrics)
        records = read_jsonl(str(path))
        span_lines = [r for r in records if r["kind"] == "span"]
        metric_lines = [r for r in records if r["kind"] == "metric"]
        assert [r["name"] for r in span_lines] == ["execute", "batch"]
        assert span_lines[1]["attrs"] == {"num_txns": 2}
        assert span_lines[0]["parent_id"] == span_lines[1]["span_id"]
        by_name = {r["name"]: r for r in metric_lines}
        assert by_name["db.committed"]["value"] == 2
        assert by_name["snark.prove_seconds"]["count"] == 1

    def test_appends_across_exports(self, tmp_path):
        spans, metrics = _sample_data()
        path = tmp_path / "obs.jsonl"
        exporter = JsonLinesExporter(str(path))
        exporter.export(spans, metrics)
        exporter.export(spans, metrics)
        assert len(read_jsonl(str(path))) == 2 * (len(spans) + len(metrics))

    def test_output_passes_ci_schema_checker(self, tmp_path):
        spans, metrics = _sample_data()
        path = tmp_path / "obs.jsonl"
        JsonLinesExporter(str(path)).export(spans, metrics)
        proc = subprocess.run(
            [sys.executable, str(REPO_ROOT / "benchmarks/check_metrics_schema.py"), str(path)],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stderr

    def test_schema_checker_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "span", "name": ""}\n')
        proc = subprocess.run(
            [sys.executable, str(REPO_ROOT / "benchmarks/check_metrics_schema.py"), str(path)],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 1
        assert "SCHEMA ERROR" in proc.stderr


class TestConsoleSummary:
    def test_summarizes_stages_and_metrics(self):
        spans, metrics = _sample_data()
        stream = io.StringIO()
        ConsoleSummaryExporter(stream).export(spans, metrics)
        text = stream.getvalue()
        assert "batch" in text and "execute" in text
        assert "db.committed: 2" in text
        assert "snark.prove_seconds" in text


def test_noop_and_fanout():
    spans, metrics = _sample_data()
    stream = io.StringIO()
    export_all([NoopExporter(), ConsoleSummaryExporter(stream)], spans, metrics)
    assert "observability summary" in stream.getvalue()
