"""Unit tests for repro.obs metrics: instruments, registry, thread-safety."""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry, timed


class TestCounter:
    def test_monotone(self):
        c = Counter("x")
        c.inc()
        c.inc(4)
        assert c.value == 5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_snapshot(self):
        c = Counter("db.committed")
        c.inc(3)
        assert c.snapshot() == {"name": "db.committed", "type": "counter", "value": 3}


class TestGauge:
    def test_set_and_add(self):
        g = Gauge("queue.depth")
        g.set(10)
        g.add(-3)
        assert g.value == 7.0
        assert g.snapshot()["type"] == "gauge"


class TestHistogram:
    def test_percentiles_nearest_rank(self):
        h = Histogram("t")
        for v in range(1, 101):  # 1..100
            h.observe(v)
        assert h.percentile(0) == 1
        assert h.percentile(100) == 100
        assert h.percentile(50) == pytest.approx(50, abs=1)
        assert h.percentile(95) == pytest.approx(95, abs=1)
        with pytest.raises(ValueError):
            h.percentile(101)

    def test_empty_percentile_is_zero(self):
        assert Histogram("t").percentile(99) == 0.0

    def test_snapshot_fields(self):
        h = Histogram("snark.prove_seconds")
        for v in (0.5, 1.5, 1.0):
            h.observe(v)
        snap = h.snapshot()
        assert snap["count"] == 3
        assert snap["sum"] == pytest.approx(3.0)
        assert snap["min"] == 0.5 and snap["max"] == 1.5
        assert snap["mean"] == pytest.approx(1.0)
        assert set(snap) >= {"p50", "p95", "p99"}

    def test_window_bounds_samples_but_not_totals(self):
        h = Histogram("t", maxsamples=4)
        for v in range(10):
            h.observe(v)
        assert h.count == 10
        assert h.sum == pytest.approx(sum(range(10)))
        # Percentiles now only see the newest 4 samples (6..9).
        assert h.percentile(0) == 6

    def test_timed_observes_block(self):
        h = Histogram("t")
        with timed(h):
            pass
        assert h.count == 1 and h.sum >= 0


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("h") is reg.histogram("h")

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(ValueError):
            reg.gauge("a")

    def test_reset_keeps_handles_valid(self):
        reg = MetricsRegistry()
        c = reg.counter("cache.x.hits")
        c.inc(7)
        reg.reset()
        assert c.value == 0
        c.inc()  # the pre-reset handle still feeds the registry
        assert reg.counter("cache.x.hits").value == 1

    def test_snapshot_is_sorted_and_json_shaped(self):
        reg = MetricsRegistry()
        reg.counter("b").inc()
        reg.gauge("a").set(2)
        reg.histogram("c").observe(1.0)
        snap = reg.snapshot()
        assert list(snap) == ["a", "b", "c"]
        assert snap["b"] == {"name": "b", "type": "counter", "value": 1}

    def test_thread_safety_under_prover_pool(self):
        """Many workers hammering one counter + histogram: nothing lost."""
        reg = MetricsRegistry()
        counter = reg.counter("cache.hot.hits")
        hist = reg.histogram("snark.prove_seconds")

        def work(_: int) -> None:
            for _ in range(200):
                counter.inc()
                hist.observe(0.001)

        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(work, range(8)))
        assert counter.value == 8 * 200
        assert hist.count == 8 * 200
        assert hist.sum == pytest.approx(8 * 200 * 0.001)
