"""Unit tests for repro.obs spans: nesting, cross-thread parents, bounds."""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.obs import Span, Tracer, get_tracer, set_tracer, stage_totals


class TestNesting:
    def test_child_inherits_parent_and_root(self):
        tracer = Tracer()
        with tracer.span("batch") as outer:
            with tracer.span("execute") as inner:
                assert inner.parent_id == outer.span_id
                assert inner.root_id == outer.root_id == outer.span_id
        records = tracer.finished()
        assert [r.name for r in records] == ["execute", "batch"]  # close order
        assert {r.root_id for r in records} == {outer.span_id}

    def test_siblings_share_parent(self):
        tracer = Tracer()
        with tracer.span("batch") as batch:
            for name in ("execute", "certify_unit", "respond"):
                with tracer.span(name):
                    pass
        children = [r for r in tracer.finished() if r.name != "batch"]
        assert all(r.parent_id == batch.span_id for r in children)

    def test_top_level_span_is_its_own_root(self):
        tracer = Tracer()
        with tracer.span("batch") as span:
            assert span.parent_id is None
            assert span.root_id == span.span_id

    def test_explicit_parent_overrides_stack(self):
        tracer = Tracer()
        with tracer.span("batch") as batch:
            with tracer.span("execute"):
                # Even with "execute" innermost, parent= wins.
                with tracer.span("prove_piece", parent=batch) as piece:
                    assert piece.parent_id == batch.span_id

    def test_attrs_set_while_open(self):
        tracer = Tracer()
        with tracer.span("batch", num_txns=4) as span:
            span.set(pieces=2, constraints=100)
        (record,) = tracer.finished()
        assert record.attrs == {"num_txns": 4, "pieces": 2, "constraints": 100}

    def test_exception_marks_error_and_closes(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("batch"):
                raise RuntimeError("boom")
        (record,) = tracer.finished()
        assert record.attrs["error"] is True
        assert tracer.current() is None

    def test_spans_in_filters_by_tree(self):
        tracer = Tracer()
        with tracer.span("batch") as first:
            with tracer.span("execute"):
                pass
        with tracer.span("batch") as second:
            pass
        assert len(tracer.spans_in(first.root_id)) == 2
        assert len(tracer.spans_in(second.root_id)) == 1

    def test_durations_are_monotonic(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = tracer.finished()
        assert inner.duration >= 0
        assert outer.duration >= inner.duration
        assert outer.start <= inner.start and inner.end <= outer.end


class TestCrossThread:
    def test_pool_workers_attach_to_dispatcher_span(self):
        """The server's prove_piece pattern: parent= from another thread."""
        tracer = Tracer()

        def job(index: int, parent: Span) -> None:
            with tracer.span("prove_piece", parent=parent, piece=index):
                with tracer.span("prove"):
                    pass

        with tracer.span("batch") as batch:
            with ThreadPoolExecutor(max_workers=4) as pool:
                futures = [pool.submit(job, i, batch) for i in range(8)]
                for future in futures:
                    future.result()
        tree = tracer.spans_in(batch.root_id)
        pieces = [r for r in tree if r.name == "prove_piece"]
        proves = [r for r in tree if r.name == "prove"]
        assert len(pieces) == 8 and len(proves) == 8
        assert all(r.parent_id == batch.span_id for r in pieces)
        piece_ids = {r.span_id for r in pieces}
        # Each prove child nested under its own prove_piece via the
        # worker's thread-local stack.
        assert all(r.parent_id in piece_ids for r in proves)
        assert all(r.root_id == batch.span_id for r in tree)

    def test_concurrent_spans_are_thread_safe(self):
        tracer = Tracer()
        barrier = threading.Barrier(8)

        def worker() -> None:
            barrier.wait()
            for i in range(50):
                with tracer.span("w", i=i):
                    pass

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(tracer) == 8 * 50
        assert tracer.dropped == 0


class TestBufferBounds:
    def test_overflow_drops_oldest(self):
        tracer = Tracer(maxlen=10)
        for i in range(25):
            with tracer.span("s", i=i):
                pass
        assert len(tracer) == 10
        assert tracer.dropped == 15
        kept = [r.attrs["i"] for r in tracer.finished()]
        assert kept == list(range(15, 25))

    def test_clear_resets(self):
        tracer = Tracer(maxlen=2)
        for _ in range(5):
            with tracer.span("s"):
                pass
        tracer.clear()
        assert len(tracer) == 0 and tracer.dropped == 0

    def test_rejects_empty_buffer(self):
        with pytest.raises(ValueError):
            Tracer(maxlen=0)


class TestHelpers:
    def test_stage_totals_sums_by_name(self):
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("a"):
                pass
        with tracer.span("b"):
            pass
        totals = stage_totals(tracer.finished())
        assert set(totals) == {"a", "b"}
        assert totals["a"] == pytest.approx(
            sum(r.duration for r in tracer.by_name("a"))
        )

    def test_default_tracer_swap(self):
        replacement = Tracer()
        previous = set_tracer(replacement)
        try:
            assert get_tracer() is replacement
        finally:
            set_tracer(previous)
        assert get_tracer() is previous
