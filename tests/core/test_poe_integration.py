"""Tests for PoE-compressed memory-integrity certificates."""

from __future__ import annotations

import dataclasses

import pytest

from repro.core import LitmusClient, LitmusConfig, LitmusServer
from repro.core.memory_integrity import (
    MemoryIntegrityChecker,
    MemoryIntegrityProvider,
)

from ..db.helpers import increment, transfer

PRIME_BITS = 64


@pytest.fixture()
def poe_provider(group) -> MemoryIntegrityProvider:
    return MemoryIntegrityProvider(
        group,
        initial={("row", i): 10 * i for i in range(8)},
        prime_bits=PRIME_BITS,
        use_poe=True,
    )


class TestPoECertificates:
    def test_poe_certificate_verifies(self, group, poe_provider):
        checker = MemoryIntegrityChecker(group, poe_provider.digest, PRIME_BITS)
        cert = poe_provider.certify_reads({("row", 1): 10, ("row", 3): 30})
        assert cert.poe is not None
        assert checker.mem_check(cert)

    def test_poe_and_plain_agree(self, group):
        initial = {("row", i): i for i in range(8)}
        plain = MemoryIntegrityProvider(group, initial, PRIME_BITS, use_poe=False)
        poe = MemoryIntegrityProvider(group, initial, PRIME_BITS, use_poe=True)
        assert plain.digest == poe.digest
        checker = MemoryIntegrityChecker(group, plain.digest, PRIME_BITS)
        reads = {("row", 2): 2, ("row", 5): 5}
        assert checker.mem_check(plain.certify_reads(reads))
        assert checker.mem_check(poe.certify_reads(reads))

    def test_tampered_value_fails_poe_path(self, group, poe_provider):
        checker = MemoryIntegrityChecker(group, poe_provider.digest, PRIME_BITS)
        cert = poe_provider.certify_reads({("row", 1): 10})
        forged = dataclasses.replace(cert, present=((("row", 1), 11),))
        assert not checker.mem_check(forged)

    def test_stripping_poe_falls_back_and_still_verifies(self, group, poe_provider):
        checker = MemoryIntegrityChecker(group, poe_provider.digest, PRIME_BITS)
        cert = poe_provider.certify_reads({("row", 1): 10})
        stripped = dataclasses.replace(cert, poe=None)
        # Without the PoE the checker re-verifies by full exponentiation.
        assert checker.mem_check(stripped)

    def test_mismatched_poe_rejected(self, group, poe_provider):
        checker = MemoryIntegrityChecker(group, poe_provider.digest, PRIME_BITS)
        cert_a = poe_provider.certify_reads({("row", 1): 10})
        cert_b = poe_provider.certify_reads({("row", 2): 20})
        crossed = dataclasses.replace(cert_a, poe=cert_b.poe)
        assert not checker.mem_check(crossed)


class TestPoEEndToEnd:
    def test_full_protocol_with_poe(self, group):
        config = LitmusConfig(
            cc="dr", processing_batch_size=8, prime_bits=PRIME_BITS, use_poe=True
        )
        initial = {("acct", i): 100 for i in range(4)}
        server = LitmusServer(initial=initial, config=config, group=group)
        client = LitmusClient(group, server.digest, config=config)
        txns = [transfer(i, i % 4, (i + 1) % 4, 5) for i in range(1, 9)]
        txns += [increment(i, i) for i in range(9, 13)]
        response = server.execute_batch(txns)
        verdict = client.verify_response(txns, response)
        assert verdict.accepted, verdict.reason
