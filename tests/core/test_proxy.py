"""Tests for the deprecated client proxy shim (multi-user batching).

``ClientProxy`` is now a deprecation shim over ``LitmusSession``; the suite
runs with the repo's own deprecation warnings promoted to errors, so every
construction here opts back in explicitly and asserts the warn-once
behaviour on the way.
"""

from __future__ import annotations

import warnings

import pytest

from repro.core import LitmusClient, LitmusConfig, LitmusServer
from repro.core.proxy import ClientProxy
from repro.core.session import BatchResult
from repro.errors import LitmusDeprecationWarning, ReproError

from ..db.helpers import INCREMENT, READ_ONLY, TRANSFER

PRIME_BITS = 64


def _make_proxy(group, max_batch=16, processing_batch_size=8, initial=None):
    config = LitmusConfig(
        cc="dr", processing_batch_size=processing_batch_size, prime_bits=PRIME_BITS
    )
    server = LitmusServer(initial=initial or {}, config=config, group=group)
    client = LitmusClient(group, server.digest, config=config)
    ClientProxy._warned = False
    with pytest.warns(LitmusDeprecationWarning, match="LitmusSession"):
        return ClientProxy(server, client, max_batch=max_batch)


@pytest.fixture()
def proxy(group) -> ClientProxy:
    return _make_proxy(group, initial={("acct", i): 100 for i in range(4)})


class TestProxy:
    def test_tickets_resolve_after_flush(self, proxy):
        a = proxy.submit("alice", TRANSFER, {"src": 0, "dst": 1, "amount": 10})
        b = proxy.submit("bob", READ_ONLY, {"k": 1})
        assert not a.resolved and proxy.queued == 2
        assert proxy.flush()
        assert a.resolved and b.resolved
        assert a.accepted and b.accepted
        assert a.outputs == (200,)  # transfer emits src+dst pre-balances

    def test_unresolved_ticket_guards(self, proxy):
        ticket = proxy.submit("alice", INCREMENT, {"k": 3})
        with pytest.raises(ReproError):
            _ = ticket.accepted
        proxy.flush()
        assert ticket.accepted

    def test_auto_flush_at_capacity(self, group):
        proxy = _make_proxy(group, max_batch=3, processing_batch_size=4)
        tickets = [proxy.submit(f"user{i}", INCREMENT, {"k": i}) for i in range(3)]
        # The third submit crossed the capacity: the batch flushed itself.
        assert proxy.queued == 0
        assert all(t.resolved and t.accepted for t in tickets)
        assert proxy.batches_verified == 1

    def test_ids_are_arrival_order(self, proxy):
        t1 = proxy.submit("a", INCREMENT, {"k": 1})
        t2 = proxy.submit("b", INCREMENT, {"k": 1})
        assert t1.txn_id < t2.txn_id

    def test_multiple_rounds_share_digest_chain(self, proxy):
        for round_number in range(3):
            proxy.submit("alice", INCREMENT, {"k": 7})
            assert proxy.flush()
        assert proxy.batches_verified == 3
        assert proxy.server.db.get(("row", 7)) == 3

    def test_empty_flush_is_noop(self, proxy):
        result = proxy.flush()
        assert result  # old bool contract survives BatchResult
        assert isinstance(result, BatchResult) and result.num_txns == 0
        assert proxy.batches_verified == 0

    def test_warns_exactly_once(self, group):
        config = LitmusConfig(cc="dr", processing_batch_size=8, prime_bits=PRIME_BITS)
        server = LitmusServer(initial={}, config=config, group=group)
        client = LitmusClient(group, server.digest, config=config)
        ClientProxy._warned = False
        with pytest.warns(LitmusDeprecationWarning):
            ClientProxy(server, client)
        # A second construction stays silent (warn-once shim).
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            ClientProxy(server, client)
