"""Atomic cross-shard commit: compensation, in-doubt recovery, typed errors.

The 2PC of DESIGN.md §16: every cross-shard apply round journals a durable
intent before fan-out, partial outcomes are compensated live (accepted
shards roll back to their pre-round verified watermarks), and a crash
mid-round leaves an in-doubt intent that ``ShardedSession.recover``
resolves from the durable evidence — commit-forward, truncate-abort, or
roll-forward.
"""

from __future__ import annotations

import os

import pytest

from repro.core import (
    DigestVector,
    DurabilityConfig,
    LitmusConfig,
    ShardedSession,
)
from repro.core.sharding import ShardMap
from repro.db.wal import INTENT_JOURNAL_NAME, IntentJournal
from repro.errors import RecoveryError, SimulatedCrash
from repro.faults import CorruptProofPiece, CrashPoint, FaultPlan
from repro.obs.metrics import MetricsRegistry
from repro.vc.program import (
    Add,
    KeyTemplate,
    Param,
    Program,
    ReadStmt,
    ReadVal,
    Sub,
    WriteStmt,
)

TRANSFER = Program(
    name="xa-transfer",
    params=("src", "dst", "amount"),
    statements=(
        ReadStmt("s", KeyTemplate(("acct", Param("src")))),
        ReadStmt("d", KeyTemplate(("acct", Param("dst")))),
        WriteStmt(
            KeyTemplate(("acct", Param("src"))), Sub(ReadVal("s"), Param("amount"))
        ),
        WriteStmt(
            KeyTemplate(("acct", Param("dst"))), Add(ReadVal("d"), Param("amount"))
        ),
    ),
)

NUM_ACCOUNTS = 16
CONFIG = LitmusConfig(
    cc="dr", processing_batch_size=2, batches_per_piece=2, prime_bits=64
)


def _initial():
    return {("acct", i): 100 for i in range(NUM_ACCOUNTS)}


def _read(session, acct):
    return session.shards[session.shard_map.shard_of(("acct", acct))].server.db.get(
        ("acct", acct)
    )


def _balance(session):
    return sum(_read(session, i) for i in range(NUM_ACCOUNTS))


def _cross_pair(num_shards: int) -> tuple[int, int]:
    """A (src, dst) account pair whose owners are two different shards."""
    sm = ShardMap(num_shards)
    for src in range(NUM_ACCOUNTS):
        for dst in range(NUM_ACCOUNTS):
            if sm.shard_of(("acct", src)) != sm.shard_of(("acct", dst)):
                return src, dst
    raise AssertionError("no cross-shard pair in the test keyspace")


def _abandon(session) -> None:
    """Drop a crashed session like a dead process would (best effort)."""
    try:
        session.close()
    except BaseException:
        pass


class TestLiveCompensation:
    def test_partial_apply_compensates_accepted_shards(self, group):
        """One participant rejects its apply: the other must be undone.

        The victim shard gets a private fault plan that corrupts its proof,
        so its apply batch fails client verification while the sibling
        shard's batch verifies and journals.  Pre-compensation code left
        the sibling's writes applied — half a transfer.
        """
        registry = MetricsRegistry()
        session = ShardedSession.create(
            initial=_initial(), config=CONFIG, num_shards=2, group=group,
            registry=registry,
        )
        try:
            src, dst = _cross_pair(2)
            victim = session.shard_map.shard_of(("acct", dst))
            baseline = DigestVector(session.digest.shards)
            session.shards[victim].fault_plan = FaultPlan(
                CorruptProofPiece(piece=0)
            )
            ticket = session.submit("u", TRANSFER, src=src, dst=dst, amount=5)
            result = session.flush()
            assert not result.accepted
            assert not ticket.accepted
            assert f"shard(s) {victim}" in ticket._reason
            # the never-applied baseline: balances and per-shard digests
            assert all(_read(session, i) == 100 for i in range(NUM_ACCOUNTS))
            assert session.digest == baseline
            assert registry.counter("xshard.compensations").value == 1
            assert registry.counter("xshard.commits").value == 0
            # the compensated deployment keeps taking (cross-shard) work
            session.shards[victim].fault_plan = None
            retry = session.submit("u", TRANSFER, src=src, dst=dst, amount=5)
            assert session.flush().accepted and retry.accepted
            assert _read(session, src) == 95 and _read(session, dst) == 105
            assert _balance(session) == NUM_ACCOUNTS * 100
        finally:
            session.close()


class TestInDoubtRecovery:
    def _crash_session(self, group, directory, stage, target, **create_kwargs):
        plan = FaultPlan(CrashPoint(stage, shard=target))
        return ShardedSession.create(
            initial=_initial(),
            config=CONFIG,
            num_shards=3,
            group=group,
            registry=MetricsRegistry(),
            fault_plan=plan,
            durability=DurabilityConfig(directory=directory),
            **create_kwargs,
        )

    def test_crash_after_log_commits_forward(self, group, tmp_path):
        """Every participant journaled before the kill: recovery commits."""
        directory = str(tmp_path / "fwd")
        src, dst = _cross_pair(3)
        target = ShardMap(3).shard_of(("acct", src))
        session = self._crash_session(group, directory, "after-log", target)
        session.submit("u", TRANSFER, src=src, dst=dst, amount=5)
        with pytest.raises(SimulatedCrash):
            session.flush()
        _abandon(session)

        recovered = ShardedSession.recover(
            directory, [TRANSFER], group=group, registry=MetricsRegistry()
        )
        try:
            report = recovered.xshard_report
            assert report.rounds == 1 and report.in_doubt == 1
            assert report.committed == 1
            assert report.aborted == 0 and report.rolled_forward == 0
            assert _read(recovered, src) == 95 and _read(recovered, dst) == 105
            assert _balance(recovered) == NUM_ACCOUNTS * 100
            assert recovered._intents.pending_rounds == ()
            # the resolution is durable: a journal scan agrees
            records, _ = IntentJournal.scan(
                os.path.join(directory, INTENT_JOURNAL_NAME), repair=False
            )
            assert [r.state for r in records] == ["committed"]
            # liveness, including another cross-shard round
            probe = recovered.submit("u", TRANSFER, src=src, dst=dst, amount=1)
            assert recovered.flush().accepted and probe.accepted
        finally:
            recovered.close()

    def test_crash_before_log_truncates_partial_apply(self, group, tmp_path):
        """The killed shard never journaled: the sibling's record is undone.

        The sibling's apply is a bare WAL tail record, so recovery aborts
        the round by physically truncating it — indistinguishable from the
        crash having happened one write earlier.
        """
        directory = str(tmp_path / "undo")
        src, dst = _cross_pair(3)
        target = ShardMap(3).shard_of(("acct", src))
        session = self._crash_session(group, directory, "before-log", target)
        digest_before = DigestVector(session.digest.shards)
        session.submit("u", TRANSFER, src=src, dst=dst, amount=5)
        with pytest.raises(SimulatedCrash):
            session.flush()
        _abandon(session)

        recovered = ShardedSession.recover(
            directory, [TRANSFER], group=group, registry=MetricsRegistry()
        )
        try:
            report = recovered.xshard_report
            assert report.rounds == 1 and report.in_doubt == 1
            assert report.aborted == 1 and report.truncated_records == 1
            assert report.committed == 0 and report.rolled_forward == 0
            # the never-applied baseline, bit for bit
            assert all(_read(recovered, i) == 100 for i in range(NUM_ACCOUNTS))
            assert recovered.digest == digest_before
            probe = recovered.submit("u", TRANSFER, src=src, dst=dst, amount=2)
            assert recovered.flush().accepted and probe.accepted
        finally:
            recovered.close()

    def test_consolidated_partial_rolls_forward(self, group, tmp_path):
        """A checkpointed sibling cannot be truncated: recovery re-applies.

        ``checkpoint_every=1`` makes the surviving shard consolidate the
        apply record into a checkpoint immediately, so undo is off the
        table — the journaled writes must be re-driven on the killed shard.
        """
        directory = str(tmp_path / "roll")
        src, dst = _cross_pair(3)
        target = ShardMap(3).shard_of(("acct", src))
        session = self._crash_session(
            group, directory, "before-log", target, checkpoint_every=1
        )
        session.submit("u", TRANSFER, src=src, dst=dst, amount=5)
        with pytest.raises(SimulatedCrash):
            session.flush()
        _abandon(session)

        recovered = ShardedSession.recover(
            directory,
            [TRANSFER],
            group=group,
            registry=MetricsRegistry(),
            checkpoint_every=1,
        )
        try:
            report = recovered.xshard_report
            assert report.rounds == 1 and report.in_doubt == 1
            assert report.rolled_forward == 1
            assert report.aborted == 0 and report.committed == 0
            assert _read(recovered, src) == 95 and _read(recovered, dst) == 105
            assert _balance(recovered) == NUM_ACCOUNTS * 100
        finally:
            recovered.close()
        # Idempotence: the resolution is durable, so a second recovery
        # finds nothing in doubt and the state stays put.
        again = ShardedSession.recover(
            directory,
            [TRANSFER],
            group=group,
            registry=MetricsRegistry(),
            checkpoint_every=1,
        )
        try:
            assert again.xshard_report.in_doubt == 0
            assert _read(again, src) == 95 and _read(again, dst) == 105
        finally:
            again.close()

    def test_clean_cross_round_journals_commit(self, group, tmp_path):
        directory = str(tmp_path / "clean")
        registry = MetricsRegistry()
        session = ShardedSession.create(
            initial=_initial(), config=CONFIG, num_shards=3, group=group,
            registry=registry,
            durability=DurabilityConfig(directory=directory),
        )
        src, dst = _cross_pair(3)
        ticket = session.submit("u", TRANSFER, src=src, dst=dst, amount=5)
        assert session.flush().accepted and ticket.accepted
        session.close()
        assert registry.counter("xshard.intents").value == 1
        assert registry.counter("xshard.commits").value == 1
        records, scan = IntentJournal.scan(
            os.path.join(directory, INTENT_JOURNAL_NAME), repair=False
        )
        assert scan.pending == 0
        assert [r.state for r in records] == ["committed"]
        (record,) = records
        assert record.num_shards == 3
        assert record.txns[0].program == TRANSFER.name
        assert set(record.participants) == {
            ShardMap(3).shard_of(("acct", src)),
            ShardMap(3).shard_of(("acct", dst)),
        }

    def test_recover_missing_shard_dir_raises_typed_error(self, group, tmp_path):
        directory = str(tmp_path / "lost")
        session = ShardedSession.create(
            initial=_initial(), config=CONFIG, num_shards=3, group=group,
            registry=MetricsRegistry(),
            durability=DurabilityConfig(directory=directory),
        )
        src, dst = _cross_pair(3)
        session.submit("u", TRANSFER, src=src, dst=dst, amount=5)
        assert session.flush().accepted
        session.close()
        os.rename(
            os.path.join(directory, "shard-01"),
            os.path.join(directory, "shard-01-gone"),
        )
        with pytest.raises(RecoveryError) as excinfo:
            ShardedSession.recover(
                directory, [TRANSFER], group=group, registry=MetricsRegistry()
            )
        assert "shard-01" in str(excinfo.value)
