"""Tests for the memory-integrity provider and checker (Algorithms 1-2)."""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.memory_integrity import (
    MemoryIntegrityChecker,
    MemoryIntegrityProvider,
    ReadCertificate,
)
from repro.errors import IntegrityError

PRIME_BITS = 64


@pytest.fixture()
def provider(group) -> MemoryIntegrityProvider:
    return MemoryIntegrityProvider(
        group, initial={("row", 1): 10, ("row", 2): 20}, prime_bits=PRIME_BITS
    )


@pytest.fixture()
def checker(group, provider) -> MemoryIntegrityChecker:
    return MemoryIntegrityChecker(group, provider.digest, prime_bits=PRIME_BITS)


class TestHonestPath:
    def test_present_reads_verify(self, provider, checker):
        cert = provider.certify_reads({("row", 1): 10, ("row", 2): 20})
        assert checker.mem_check(cert)

    def test_absent_reads_verify_with_initial_value(self, provider, checker):
        cert = provider.certify_reads({("row", 99): 0})
        assert checker.mem_check(cert)
        assert cert.values() == {("row", 99): 0}

    def test_mixed_reads_verify(self, provider, checker):
        cert = provider.certify_reads({("row", 1): 10, ("fresh", 5): 0})
        assert checker.mem_check(cert)

    def test_write_roll_forward(self, provider, checker):
        update = provider.apply_writes({("row", 1): 111})
        assert checker.mem_update(update)
        assert checker.acc == provider.digest

    def test_blind_insert_with_nonexistence(self, provider, checker):
        update = provider.apply_writes({("new", 7): 42})
        assert update.inserted == (("new", 7),)
        assert update.nokey is not None
        assert checker.mem_update(update)
        assert checker.acc == provider.digest

    def test_chained_updates_track_digest(self, provider, checker):
        for value in (5, 6, 7):
            update = provider.apply_writes({("row", 1): value})
            assert checker.mem_update(update)
        cert = provider.certify_reads({("row", 1): 7})
        assert checker.mem_check(cert)

    def test_reads_after_writes_use_new_digest(self, provider, checker):
        provider_cert_before = provider.certify_reads({("row", 1): 10})
        update = provider.apply_writes({("row", 2): 99})
        assert checker.mem_update(update)
        # The old certificate no longer matches the rolled-forward digest.
        assert not checker.mem_check(provider_cert_before)


class TestProviderGuards:
    def test_stale_value_rejected(self, provider):
        with pytest.raises(IntegrityError):
            provider.certify_reads({("row", 1): 11})

    def test_unwritten_key_must_read_zero(self, provider):
        with pytest.raises(IntegrityError):
            provider.certify_reads({("nope", 1): 5})

    def test_empty_writes_rejected(self, provider):
        with pytest.raises(IntegrityError):
            provider.apply_writes({})


class TestAdversarialCertificates:
    """A tampering server must never pass the checker."""

    def test_wrong_value_in_read_certificate(self, provider, checker):
        cert = provider.certify_reads({("row", 1): 10})
        forged = dataclasses.replace(cert, present=((("row", 1), 11),))
        assert not checker.mem_check(forged)

    def test_claiming_existing_key_absent(self, provider, checker):
        honest = provider.certify_reads({("never", 1): 0})
        # Claim ("row", 1) (which exists with value 10) is absent and thus 0.
        forged = ReadCertificate(
            digest=honest.digest,
            present=(),
            absent=(("row", 1),),
            lookup=None,
            nokey=honest.nokey,
        )
        assert not checker.mem_check(forged)

    def test_dropped_write_detected(self, group, provider, checker):
        # Server applies the write internally but shows the client a
        # certificate for different contents.
        update = provider.apply_writes({("row", 1): 111})
        forged = dataclasses.replace(
            update, new_pairs=((("row", 1), 10),)
        )  # pretend the old value was re-written
        assert not checker.mem_update(forged)

    def test_replayed_update_rejected(self, provider, checker):
        update = provider.apply_writes({("row", 1): 111})
        assert checker.mem_update(update)
        # Replaying the same update against the new digest must fail.
        assert not checker.mem_update(update)

    def test_wrong_new_digest_rejected(self, provider, checker):
        update = provider.apply_writes({("row", 1): 111})
        forged = dataclasses.replace(update, new_digest=update.new_digest + 1)
        assert not checker.mem_update(forged)

    def test_insert_shadowing_existing_key_rejected(self, provider, checker):
        """A malicious 'insert' of an existing key (creating a duplicate pair)
        must fail for lack of a valid non-membership proof."""
        update = provider.apply_writes({("fresh", 1): 5})
        forged = dataclasses.replace(
            update,
            inserted=(("row", 1),),
            new_pairs=((("row", 1), 666),),
        )
        assert not checker.mem_update(forged)

    def test_certificate_against_wrong_digest(self, group, provider):
        other_checker = MemoryIntegrityChecker(group, provider.digest + 1, PRIME_BITS)
        cert = provider.certify_reads({("row", 1): 10})
        assert not other_checker.mem_check(cert)
