"""Determinism and pipelining tests for the concurrent prover pool.

The same verification batch executed with ``num_provers`` ∈ {1, 2, 8} must
produce identical digests, piece statements, and verification outcomes —
concurrency may only change wall-clock, never a single certified byte.
"""

from __future__ import annotations

from repro.core import LitmusClient, LitmusConfig, LitmusServer
from repro.core.server import _chunk_end_digest
from repro.core.wrapper import WrappedUnit, statement_hash

from ..db.helpers import increment, read_only, transfer

PRIME_BITS = 64
WORKER_COUNTS = (1, 2, 8)


def run_batch(group, num_provers: int, txns_factory, **config_kwargs):
    config = LitmusConfig(
        cc="dr",
        processing_batch_size=2,
        batches_per_piece=1,
        prime_bits=PRIME_BITS,
        num_provers=num_provers,
        **config_kwargs,
    )
    initial = {("acct", i): 100 for i in range(4)}
    server = LitmusServer(initial=initial, config=config, group=group)
    client = LitmusClient(group, server.digest, config=config)
    txns = txns_factory()
    response = server.execute_batch(txns)
    verdict = client.verify_response(txns, response)
    return server, response, verdict


def piece_fingerprint(response):
    """Everything statement-relevant about each piece, in piece order."""
    return tuple(
        (
            piece.piece_index,
            piece.txn_ids,
            piece.unit_txn_ids,
            piece.start_digest,
            piece.end_digest,
            piece.all_commit,
            piece.outputs,
            tuple(piece.public_values),
            piece.circuit_signature,
            statement_hash(
                piece.piece_index,
                piece.start_digest,
                piece.end_digest,
                piece.all_commit,
                piece.outputs,
            ),
        )
        for piece in response.pieces
    )


class TestWorkerCountDeterminism:
    def test_digests_statements_and_outcomes_identical(self, group):
        def txns():
            return [transfer(i, i % 4, (i + 1) % 4, 5) for i in range(1, 17)]

        fingerprints = []
        finals = []
        for workers in WORKER_COUNTS:
            _server, response, verdict = run_batch(group, workers, txns)
            assert verdict.accepted, f"{workers} workers: {verdict.reason}"
            assert len(response.pieces) >= 8
            fingerprints.append(piece_fingerprint(response))
            finals.append((response.initial_digest, response.final_digest))
        assert len(set(fingerprints)) == 1, "piece statements diverged across workers"
        assert len(set(finals)) == 1, "digest chain diverged across workers"

    def test_outputs_identical_across_worker_counts(self, group):
        def txns():
            return [increment(i, i % 3) for i in range(1, 13)]

        outputs = []
        for workers in WORKER_COUNTS:
            _server, response, verdict = run_batch(group, workers, txns)
            assert verdict.accepted, verdict.reason
            outputs.append(tuple(sorted(response.all_outputs().items())))
        assert len(set(outputs)) == 1

    def test_sequential_batches_stay_chained_under_concurrency(self, group):
        config = LitmusConfig(
            cc="dr",
            processing_batch_size=2,
            batches_per_piece=2,
            prime_bits=PRIME_BITS,
            num_provers=4,
        )
        server = LitmusServer(initial={}, config=config, group=group)
        client = LitmusClient(group, server.digest, config=config)
        for lo in (1, 9, 17):
            txns = [increment(i, i % 5) for i in range(lo, lo + 8)]
            response = server.execute_batch(txns)
            verdict = client.verify_response(txns, response)
            assert verdict.accepted, verdict.reason
        assert client.digest == server.digest


class TestMeasuredTiming:
    def test_measured_fields_populated(self, group):
        _server, response, verdict = run_batch(
            group, 4, lambda: [increment(i, i) for i in range(1, 9)]
        )
        assert verdict.accepted
        timing = response.timing
        assert timing.measured_total_seconds > 0
        assert timing.measured_certify_seconds > 0
        assert timing.measured_replay_seconds > 0
        assert timing.measured_prove_wall_seconds > 0
        assert timing.num_pieces == len(response.pieces)
        # Wall-clock of the pool can never exceed total elapsed time.
        assert timing.measured_prove_wall_seconds <= timing.measured_total_seconds
        breakdown = timing.measured_breakdown()
        assert set(breakdown) == {
            "db",
            "certify",
            "circuit_build",
            "replay",
            "setup",
            "prove",
            "prove_wall",
            "total_wall",
        }
        assert timing.measured_pipeline_speedup > 0

    def test_measured_cost_model_recalibrated(self, group):
        server, response, _ = run_batch(
            group, 2, lambda: [increment(i, i) for i in range(1, 9)]
        )
        model = server.measured_cost_model
        assert model is not None
        expected = response.timing.measured_setup_seconds / max(
            1, response.timing.total_constraints
        )
        assert model.keygen_per_constraint == expected


class TestSetupReuse:
    def test_identical_pieces_share_one_trusted_setup(self, group):
        server, response, verdict = run_batch(
            group, 4, lambda: [increment(i, i) for i in range(1, 9)]
        )
        assert verdict.accepted
        # All pieces are [increment|r1w1]: one structure, one setup.
        signatures = {p.circuit_signature for p in response.pieces}
        assert len(signatures) == 1
        assert server.setup_cache_hits == len(response.pieces) - 1

    def test_reuse_can_be_disabled(self, group):
        server, response, verdict = run_batch(
            group,
            4,
            lambda: [increment(i, i) for i in range(1, 9)],
            reuse_proving_keys=False,
        )
        assert verdict.accepted
        assert server.setup_cache_hits == 0
        key_ids = {p.verification_key.key_id for p in response.pieces}
        assert len(key_ids) == len(response.pieces)


class TestAllReadFinalChunk:
    """Regression for the dead-branch bug in piece formation.

    A chunk whose final unit (or entire contents) carries no write
    certificate must leave the digest chain where the last actual write put
    it — a single reverse scan, no special case for the last unit.
    """

    def test_all_read_final_chunk_keeps_digest(self, group):
        def txns():
            # Writes first, then a tail of pure reads that fills the last
            # chunk(s) with units that have no write certificate.
            writes = [increment(i, i) for i in range(1, 5)]
            reads = [read_only(i, (i - 5) % 4) for i in range(5, 13)]
            return writes + reads

        _server, response, verdict = run_batch(group, 2, txns)
        assert verdict.accepted, verdict.reason
        tail = response.pieces[-1]
        # The all-read tail pieces do not move the digest.
        assert tail.start_digest == tail.end_digest
        assert response.final_digest == tail.end_digest

    def test_chunk_end_digest_reverse_scan(self, group):
        class FakeWrite:
            def __init__(self, new_digest):
                self.new_digest = new_digest

        def unit(write_digest=None):
            cert = FakeWrite(write_digest) if write_digest is not None else None
            return WrappedUnit(unit=None, read_certificate=None, write_certificate=cert)

        # All-read chunk: digest unchanged.
        assert _chunk_end_digest((unit(), unit()), start_digest=7) == 7
        # Last unit wrote: its digest wins.
        assert _chunk_end_digest((unit(3), unit(9)), start_digest=7) == 9
        # Read-only tail after a write: the write's digest still wins.
        assert _chunk_end_digest((unit(3), unit(), unit()), start_digest=7) == 3
