"""Tests for server snapshots and the full recovery story."""

from __future__ import annotations

import json

import pytest

from repro.core import LitmusClient, LitmusConfig, LitmusServer
from repro.core.checkpoint import DigestLog
from repro.core.snapshot import restore_server, snapshot_server
from repro.errors import ReproError, VerificationFailure

from ..db.helpers import increment, transfer

PRIME_BITS = 64
CONFIG = LitmusConfig(cc="dr", processing_batch_size=8, prime_bits=PRIME_BITS)


def build_server(group, initial=None):
    return LitmusServer(initial=initial or {}, config=CONFIG, group=group)


class TestSnapshotRoundtrip:
    def test_fresh_server_roundtrip(self, group):
        server = build_server(group, {("acct", 0): 100})
        payload = snapshot_server(server)
        restored = restore_server(payload, CONFIG, group)
        assert restored.digest == server.digest
        assert restored.db.get(("acct", 0)) == 100

    def test_roundtrip_after_batches(self, group):
        server = build_server(group)
        client = LitmusClient(group, server.digest, config=CONFIG)
        txns = [increment(i, i % 3) for i in range(1, 10)]
        assert client.verify_response(txns, server.execute_batch(txns)).accepted
        payload = snapshot_server(server)
        restored = restore_server(payload, CONFIG, group, expected_digest=client.digest)
        # The restored server continues the digest chain seamlessly.
        more = [increment(i, 0) for i in range(10, 14)]
        verdict = client.verify_response(more, restored.execute_batch(more))
        assert verdict.accepted, verdict.reason

    def test_corrupted_row_detected(self, group):
        server = build_server(group, {("acct", 0): 100})
        payload = json.loads(snapshot_server(server))
        payload["rows"][0][1] = 999  # tamper with a value
        with pytest.raises(VerificationFailure, match="corrupted"):
            restore_server(json.dumps(payload), CONFIG, group)

    def test_stale_snapshot_detected(self, group):
        server = build_server(group)
        client = LitmusClient(group, server.digest, config=CONFIG)
        stale_payload = snapshot_server(server)
        txns = [increment(1, 0)]
        assert client.verify_response(txns, server.execute_batch(txns)).accepted
        with pytest.raises(VerificationFailure, match="stale"):
            restore_server(stale_payload, CONFIG, group, expected_digest=client.digest)

    def test_garbage_rejected(self, group):
        with pytest.raises(ReproError):
            restore_server(json.dumps({"format": "nope"}), CONFIG, group)


class TestFullRecoveryStory:
    def test_client_log_plus_server_snapshot(self, group):
        """The complete operational flow: verified batches, both sides
        persist, both sides restart, and verification continues."""
        server = build_server(group, {("acct", i): 50 for i in range(3)})
        client = LitmusClient(group, server.digest, config=CONFIG)
        log = DigestLog(initial_digest=server.digest)

        txns = [transfer(i, i % 3, (i + 1) % 3, 2) for i in range(1, 7)]
        verdict = client.verify_response(txns, server.execute_batch(txns))
        assert verdict.accepted
        log.record(verdict.new_digest, num_txns=len(txns))
        server_state = snapshot_server(server)
        client_state = log.to_json()

        # --- crash; both sides restart from persisted state ----------------
        restored_log = DigestLog.from_json(client_state)
        restored_server = restore_server(
            server_state, CONFIG, group, expected_digest=restored_log.latest_digest
        )
        restored_client = LitmusClient(
            group, restored_log.latest_digest, config=CONFIG
        )
        more = [transfer(i, i % 3, (i + 1) % 3, 1) for i in range(7, 12)]
        verdict2 = restored_client.verify_response(
            more, restored_server.execute_batch(more)
        )
        assert verdict2.accepted, verdict2.reason
        total = sum(restored_server.db.get(("acct", i)) for i in range(3))
        assert total == 150
