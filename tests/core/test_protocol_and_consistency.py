"""Tests for the protocol types, timing report, and consistency invariants."""

from __future__ import annotations

import pytest

from repro.core.consistency import SumInvariant, check_invariants
from repro.core.memory_integrity import MemoryIntegrityProvider
from repro.core.protocol import TimingReport
from repro.errors import ReproError

PRIME_BITS = 64


class TestTimingReport:
    def test_throughput(self):
        timing = TimingReport(total_seconds=2.0, num_txns=100)
        assert timing.throughput == 50.0

    def test_zero_time_is_zero_throughput(self):
        assert TimingReport(total_seconds=0.0, num_txns=10).throughput == 0.0

    def test_breakdown_normalizes(self):
        timing = TimingReport(
            db_seconds=1.0,
            trace_seconds=1.0,
            keygen_seconds=5.1,
            prove_seconds=3.8,
            verify_seconds=1.0,
            output_seconds=0.1,
        )
        shares = timing.breakdown()
        assert sum(shares.values()) == pytest.approx(1.0)
        assert shares["process_traces"] == pytest.approx(2.0 / 12.0)

    def test_empty_breakdown(self):
        shares = TimingReport().breakdown()
        assert all(value == 0.0 for value in shares.values())


class TestSumInvariant:
    @pytest.fixture()
    def provider(self, group):
        return MemoryIntegrityProvider(
            group,
            initial={("acct", 0): 100, ("acct", 1): 100, ("other", 0): 5},
            prime_bits=PRIME_BITS,
        )

    def test_balanced_transfer_passes(self, provider):
        invariant = SumInvariant.over("acct")
        cert = provider.apply_writes({("acct", 0): 70, ("acct", 1): 130})
        assert invariant.check_unit(cert)

    def test_minting_fails(self, provider):
        invariant = SumInvariant.over("acct")
        cert = provider.apply_writes({("acct", 0): 101})
        assert not invariant.check_unit(cert)

    def test_burning_fails(self, provider):
        invariant = SumInvariant.over("acct")
        cert = provider.apply_writes({("acct", 0): 99})
        assert not invariant.check_unit(cert)

    def test_uncovered_keys_ignored(self, provider):
        invariant = SumInvariant.over("acct")
        cert = provider.apply_writes({("other", 0): 99})
        assert invariant.check_unit(cert)

    def test_inserted_keys_start_at_zero(self, provider):
        invariant = SumInvariant.over("acct")
        # Moving 50 into a brand-new covered account burns nothing only if a
        # covered key loses the same amount.
        cert = provider.apply_writes({("acct", 0): 50, ("acct", 99): 50})
        assert invariant.check_unit(cert)

    def test_blind_insert_of_value_fails(self, provider):
        invariant = SumInvariant.over("acct")
        cert = provider.apply_writes({("acct", 42): 7})
        assert not invariant.check_unit(cert)

    def test_check_invariants_combines(self, provider):
        acct = SumInvariant.over("acct")
        other = SumInvariant.over("other")
        cert = provider.apply_writes({("acct", 0): 70, ("acct", 1): 130})
        assert check_invariants([acct, other], cert)
        cert2 = provider.apply_writes({("other", 0): 6})
        assert check_invariants([acct], cert2)
        assert not check_invariants([acct, other], cert2)


class TestConfig:
    def test_invalid_cc(self):
        from repro.core.config import LitmusConfig

        with pytest.raises(ReproError):
            LitmusConfig(cc="occ")

    def test_invalid_backend(self):
        from repro.core.config import LitmusConfig

        with pytest.raises(ReproError):
            LitmusConfig(backend="starks")

    def test_aggregation_follows_cc(self):
        from repro.core.config import LitmusConfig

        assert LitmusConfig(cc="dr").aggregation_enabled
        assert not LitmusConfig(cc="2pl").aggregation_enabled

    def test_positive_counts_required(self):
        from repro.core.config import LitmusConfig

        with pytest.raises(ReproError):
            LitmusConfig(num_provers=0)
