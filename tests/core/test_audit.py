"""Tests for the audit trail."""

from __future__ import annotations

import dataclasses

import pytest

from repro.core import LitmusClient, LitmusConfig, LitmusServer
from repro.core.audit import AuditTrail

from ..db.helpers import increment, transfer

PRIME_BITS = 64
CONFIG = LitmusConfig(cc="dr", processing_batch_size=8, prime_bits=PRIME_BITS)


@pytest.fixture()
def session(group):
    server = LitmusServer(
        initial={("acct", i): 100 for i in range(4)}, config=CONFIG, group=group
    )
    client = LitmusClient(group, server.digest, config=CONFIG)
    trail = AuditTrail(initial_digest=server.digest)
    return server, client, trail


class TestAuditTrail:
    def test_records_accepted_batches(self, session):
        server, client, trail = session
        txns = [transfer(i, i % 4, (i + 1) % 4, 5) for i in range(1, 7)]
        response = server.execute_batch(txns)
        verdict = client.verify_response(txns, response)
        record = trail.observe(txns, response, verdict)
        assert record.accepted
        assert record.num_txns == 6
        assert record.programs == ("transfer",)
        assert record.new_digest == client.digest
        assert trail.digest_log.latest_digest == client.digest

    def test_rejected_batch_does_not_advance_log(self, session):
        server, client, trail = session
        txns = [increment(1, 0)]
        response = server.execute_batch(txns)
        forged = dataclasses.replace(response, final_digest=response.final_digest ^ 1)
        verdict = client.verify_response(txns, forged)
        assert not verdict.accepted
        before = trail.digest_log.latest_digest
        record = trail.observe(txns, forged, verdict)
        assert not record.accepted
        assert record.reject_reason
        assert trail.digest_log.latest_digest == before

    def test_render_report(self, session):
        server, client, trail = session
        for start in (1, 5):
            txns = [increment(i, i % 2) for i in range(start, start + 4)]
            response = server.execute_batch(txns)
            verdict = client.verify_response(txns, response)
            trail.observe(txns, response, verdict)
        report = trail.render()
        assert "2 verified" in report
        assert "verified transactions: 8" in report
        assert "hash chain: OK" in report
        assert "#  1 VERIFIED" in report

    def test_multi_program_batches_listed(self, session):
        server, client, trail = session
        txns = [increment(1, 0), transfer(2, 0, 1, 3)]
        response = server.execute_batch(txns)
        verdict = client.verify_response(txns, response)
        record = trail.observe(txns, response, verdict)
        assert record.programs == ("increment", "transfer")
