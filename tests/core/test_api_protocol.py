"""The VerifiedSession protocol and the DigestVector digest type.

Every session implementation — the embedded :class:`LitmusSession`, the
networked :class:`RemoteSession`, and the sharded
:class:`ShardedSession` — must satisfy the same structural protocol, so
application code moves between deployments by swapping the constructor.
The conformance test is parametrized over real instances of all three.
"""

from __future__ import annotations

import pytest

from repro.core import (
    DigestVector,
    LitmusConfig,
    LitmusSession,
    ShardedSession,
    VerifiedSession,
)
from repro.core.api import DIGEST_VECTOR_WIRE_VERSION
from repro.net import LitmusService, RemoteSession, ServiceConfig
from repro.obs.metrics import MetricsRegistry
from repro.vc.program import (
    Add,
    Emit,
    KeyTemplate,
    Param,
    Program,
    ReadStmt,
    ReadVal,
    Sub,
    WriteStmt,
)

TRANSFER = Program(
    name="api-transfer",
    params=("src", "dst", "amount"),
    statements=(
        ReadStmt("s", KeyTemplate(("acct", Param("src")))),
        ReadStmt("d", KeyTemplate(("acct", Param("dst")))),
        WriteStmt(
            KeyTemplate(("acct", Param("src"))), Sub(ReadVal("s"), Param("amount"))
        ),
        WriteStmt(
            KeyTemplate(("acct", Param("dst"))), Add(ReadVal("d"), Param("amount"))
        ),
        Emit(Add(ReadVal("s"), ReadVal("d"))),
    ),
)

CONFIG = LitmusConfig(
    cc="dr", processing_batch_size=2, batches_per_piece=2, prime_bits=64
)

INITIAL = {("acct", i): 100 for i in range(8)}


class TestDigestVector:
    def test_single_is_bit_identical_to_the_scalar(self):
        dv = DigestVector.single(0xDEADBEEF)
        assert dv == 0xDEADBEEF
        assert int(dv) == 0xDEADBEEF
        assert len(dv) == 1 and dv.shards == (0xDEADBEEF,)
        assert hash(dv) == hash(0xDEADBEEF)
        assert f"{dv:#x}" == "0xdeadbeef"

    def test_multi_shard_folds_deterministically(self):
        a = DigestVector((1, 2, 3))
        b = DigestVector((1, 2, 3))
        assert a == b and int(a) == int(b)
        assert len(a) == 3 and list(a) == [1, 2, 3] and a[1] == 2
        # order matters: the fold is positional, not a set hash
        assert int(DigestVector((3, 2, 1))) != int(a)
        # and a multi-shard fold never equals a raw component
        assert int(a) not in (1, 2, 3)

    def test_wire_round_trip(self):
        for shards in ((5,), (1, 2), ((1 << 512) - 3, 0, 7)):
            dv = DigestVector(shards)
            wire = dv.to_wire()
            assert wire["v"] == DIGEST_VECTOR_WIRE_VERSION
            back = DigestVector.from_wire(wire)
            assert back == dv and back.shards == dv.shards

    def test_from_wire_rejects_unknown_version(self):
        wire = DigestVector((1, 2)).to_wire()
        wire["v"] = 99
        with pytest.raises(ValueError):
            DigestVector.from_wire(wire)

    def test_coerce(self):
        dv = DigestVector((4, 5))
        assert DigestVector.coerce(dv) is dv
        assert DigestVector.coerce(7) == DigestVector.single(7)
        assert DigestVector.coerce(dv.to_wire()) == dv
        with pytest.raises(TypeError):
            DigestVector.coerce("0x7")

    def test_rejects_empty_and_negative(self):
        with pytest.raises(ValueError):
            DigestVector(())
        with pytest.raises(ValueError):
            DigestVector((1, -2))

    def test_json_safe(self):
        import json

        assert json.loads(json.dumps({"d": DigestVector((1, 2))})) == {
            "d": int(DigestVector((1, 2)))
        }


def _embedded(group):
    session = LitmusSession.create(
        initial=dict(INITIAL), config=CONFIG, group=group,
        registry=MetricsRegistry(),
    )
    return session, session.close


def _sharded(group):
    session = ShardedSession.create(
        initial=dict(INITIAL), config=CONFIG, num_shards=2, group=group,
        registry=MetricsRegistry(),
    )
    return session, session.close


def _remote(group):
    registry = MetricsRegistry()
    backing = LitmusSession.create(
        initial=dict(INITIAL), config=CONFIG, group=group, registry=registry
    )
    service = LitmusService(
        backing, programs=[TRANSFER], config=ServiceConfig(), registry=registry
    )
    host, port = service.start()
    client = RemoteSession(host, port, registry=registry)

    def teardown():
        client.close()
        service.shutdown()

    return client, teardown


@pytest.fixture(params=["embedded", "sharded", "remote"])
def session_under_test(request, group):
    factory = {"embedded": _embedded, "sharded": _sharded, "remote": _remote}[
        request.param
    ]
    session, teardown = factory(group)
    yield session
    teardown()


class TestVerifiedSessionConformance:
    def test_satisfies_the_protocol(self, session_under_test):
        assert isinstance(session_under_test, VerifiedSession)

    def test_protocol_surface_behaves(self, session_under_test):
        session = session_under_test
        # RemoteSession submits by program name; the embedded ones take the
        # Program object — the protocol is agnostic (``program`` parameter).
        program = "api-transfer" if isinstance(session, RemoteSession) else TRANSFER
        assert session.queued == 0
        ticket = session.submit("alice", program, src=0, dst=1, amount=5)
        assert session.queued == 1
        result = session.flush()
        assert result.accepted and ticket.accepted
        assert session.queued == 0
        digest = session.digest
        assert isinstance(digest, DigestVector) and len(digest) >= 1
        # recover is part of the surface on every implementation
        assert callable(getattr(session, "recover"))

    def test_non_sessions_are_rejected(self):
        assert not isinstance(object(), VerifiedSession)
        assert not isinstance(42, VerifiedSession)
