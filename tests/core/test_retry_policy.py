"""RetryPolicy scheduling: injectable sleep, exponential backoff, jitter.

The policy is pure scheduling logic, so it gets pinned without a server in
the loop: ``delay()`` is exercised directly, and the injected ``sleep``
callable proves a flush's exact backoff schedule is observable without
burning wall-clock (the reason the hook exists).
"""

from __future__ import annotations

import random

import pytest

from repro.core import RetryPolicy
from repro.errors import ReproError


class TestDelaySchedule:
    def test_exponential_backoff(self):
        policy = RetryPolicy(max_attempts=4, backoff=0.25)
        assert [policy.delay(n) for n in (1, 2, 3)] == [0.25, 0.5, 1.0]

    def test_zero_backoff_never_waits(self):
        policy = RetryPolicy(max_attempts=3, backoff=0.0)
        assert [policy.delay(n) for n in (1, 2, 3)] == [0.0, 0.0, 0.0]

    def test_no_jitter_is_deterministic_without_rng(self):
        policy = RetryPolicy(backoff=0.1)
        assert policy.delay(2) == policy.delay(2) == 0.2


class TestJitter:
    def test_jitter_bounds(self):
        policy = RetryPolicy(backoff=1.0, jitter=0.5)
        rng = random.Random(0)
        for attempt in (1, 2, 3):
            base = 1.0 * 2 ** (attempt - 1)
            for _ in range(50):
                delay = policy.delay(attempt, rng=rng)
                assert base * 0.5 <= delay <= base * 1.5

    def test_seeded_rng_makes_jitter_replayable(self):
        policy = RetryPolicy(backoff=0.5, jitter=0.3)
        one = [policy.delay(n, rng=random.Random(7)) for n in (1, 2, 3)]
        two = [policy.delay(n, rng=random.Random(7)) for n in (1, 2, 3)]
        assert one == two
        assert one != [0.5, 1.0, 2.0]  # the jitter actually moved something

    def test_jitter_without_backoff_stays_zero(self):
        policy = RetryPolicy(backoff=0.0, jitter=0.5)
        assert policy.delay(3, rng=random.Random(1)) == 0.0

    def test_jitter_falls_back_to_module_random(self):
        policy = RetryPolicy(backoff=1.0, jitter=0.1)
        assert 0.9 <= policy.delay(1) <= 1.1


class TestInjectableSleep:
    def test_recorded_schedule(self):
        sleeps: list[float] = []
        policy = RetryPolicy(max_attempts=3, backoff=0.25, sleep=sleeps.append)
        for attempt in (1, 2):
            delay = policy.delay(attempt)
            if delay > 0:
                policy.sleep(delay)
        assert sleeps == [0.25, 0.5]

    def test_default_sleep_is_time_sleep(self):
        import time

        assert RetryPolicy().sleep is time.sleep


class TestRetryAfterHint:
    """The server-supplied hint: wait max(hint, backoff), jitter intact."""

    def test_hint_wins_over_shorter_backoff(self):
        policy = RetryPolicy(backoff=0.1)
        assert policy.delay(1, retry_after=2.0) == 2.0

    def test_longer_backoff_wins_over_hint(self):
        policy = RetryPolicy(backoff=1.0)
        assert policy.delay(3, retry_after=0.5) == 4.0

    def test_hint_applies_even_without_backoff(self):
        policy = RetryPolicy(backoff=0.0)
        assert policy.delay(1, retry_after=0.75) == 0.75

    def test_none_hint_is_plain_backoff(self):
        policy = RetryPolicy(backoff=0.25)
        assert policy.delay(2, retry_after=None) == policy.delay(2) == 0.5

    def test_hint_compares_against_jittered_backoff(self):
        # The jitter draw happens before the max(), so the comparison is
        # against the *jittered* exponential delay.
        policy = RetryPolicy(backoff=1.0, jitter=0.5)
        expected_base = policy.delay(2, rng=random.Random(3))
        hinted = policy.delay(2, rng=random.Random(3), retry_after=0.0)
        assert hinted == expected_base

    def test_seeded_schedule_identical_with_and_without_hint(self):
        # One rng draw per call either way: a hint arriving mid-schedule
        # must not shift the seeded jitter stream.
        policy = RetryPolicy(backoff=0.5, jitter=0.3)
        rng_a, rng_b = random.Random(11), random.Random(11)
        for attempt in (1, 2, 3):
            hint = 0.0 if attempt == 2 else None
            policy.delay(attempt, rng=rng_a, retry_after=hint)
            policy.delay(attempt, rng=rng_b)
        assert rng_a.random() == rng_b.random()


class TestValidation:
    def test_rejects_bad_jitter(self):
        with pytest.raises(ReproError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ReproError):
            RetryPolicy(jitter=-0.1)

    def test_rejects_non_callable_sleep(self):
        with pytest.raises(ReproError):
            RetryPolicy(sleep="nap")  # type: ignore[arg-type]

    def test_rejects_bad_attempts_and_backoff(self):
        with pytest.raises(ReproError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ReproError):
            RetryPolicy(backoff=-1.0)
