"""Unit tests for the transaction wrapper (Algorithm 3) and statement hash."""

from __future__ import annotations

import pytest

from repro.core.memory_integrity import MemoryIntegrityProvider
from repro.core.wrapper import (
    WrappedPiece,
    WrappedUnit,
    build_wrapped_circuit,
    piece_constraints,
    replay_piece,
    statement_hash,
)
from repro.db.executor import ScheduleUnit
from repro.vc.compiler import CircuitCompiler

from ..db.helpers import INCREMENT, increment

PRIME_BITS = 64


def wrapped_piece_for(group, txns, initial=None):
    """Build a certified piece by driving the provider over a simple schedule."""
    provider = MemoryIntegrityProvider(group, initial=initial, prime_bits=PRIME_BITS)
    start_digest = provider.digest
    units = []
    state = dict(initial or {})
    for txn in txns:
        result = txn.program.execute(txn.params, lambda k: state.get(k, 0))
        reads = dict(result.store_reads)
        writes = dict(result.writes)
        unit = ScheduleUnit(
            txn_ids=(txn.txn_id,),
            reads=tuple(reads.items()),
            writes=tuple(writes.items()),
        )
        read_cert = provider.certify_reads(reads) if reads else None
        write_cert = provider.apply_writes(writes) if writes else None
        units.append(WrappedUnit(unit, read_cert, write_cert))
        state.update(writes)
    piece = WrappedPiece(piece_index=0, units=tuple(units), start_digest=start_digest)
    return piece, provider


class TestReplay:
    def test_honest_replay_commits(self, group):
        txns = [increment(1, 5), increment(2, 5)]
        piece, provider = wrapped_piece_for(group, txns)
        outcome = replay_piece(
            piece, {t.txn_id: t for t in txns}, CircuitCompiler(), group, PRIME_BITS
        )
        assert outcome.all_commit
        assert outcome.end_digest == provider.digest
        # increment emits the pre-increment value.
        assert dict(outcome.outputs) == {1: (0,), 2: (1,)}

    def test_tampered_unit_reads_break_replay(self, group):
        txns = [increment(1, 5)]
        piece, _provider = wrapped_piece_for(group, txns)
        unit = piece.units[0].unit
        tampered_unit = ScheduleUnit(
            txn_ids=unit.txn_ids,
            reads=((("row", 5), 42),),  # claim a different read value
            writes=unit.writes,
        )
        tampered = WrappedPiece(
            piece_index=0,
            units=(
                WrappedUnit(
                    tampered_unit,
                    piece.units[0].read_certificate,
                    piece.units[0].write_certificate,
                ),
            ),
            start_digest=piece.start_digest,
        )
        outcome = replay_piece(
            tampered, {t.txn_id: t for t in txns}, CircuitCompiler(), group, PRIME_BITS
        )
        assert not outcome.all_commit

    def test_wrong_start_digest_breaks_replay(self, group):
        txns = [increment(1, 5)]
        piece, _provider = wrapped_piece_for(group, txns)
        shifted = WrappedPiece(
            piece_index=0, units=piece.units, start_digest=piece.start_digest + 1
        )
        outcome = replay_piece(
            shifted, {t.txn_id: t for t in txns}, CircuitCompiler(), group, PRIME_BITS
        )
        assert not outcome.all_commit


class TestStatementHash:
    def test_sensitive_to_every_component(self):
        base = statement_hash(0, 10, 20, True, [(1, (5,))])
        assert statement_hash(1, 10, 20, True, [(1, (5,))]) != base
        assert statement_hash(0, 11, 20, True, [(1, (5,))]) != base
        assert statement_hash(0, 10, 21, True, [(1, (5,))]) != base
        assert statement_hash(0, 10, 20, False, [(1, (5,))]) != base
        assert statement_hash(0, 10, 20, True, [(1, (6,))]) != base

    def test_two_field_elements(self):
        lo, hi = statement_hash(0, 1, 2, True, [])
        assert 0 <= lo < 2**128
        assert 0 <= hi < 2**128


class TestPieceCircuit:
    def test_structure_independent_of_values(self, group):
        compiler = CircuitCompiler()
        txns = [increment(1, 5)]
        by_id = {t.txn_id: t for t in txns}
        piece, _provider = wrapped_piece_for(group, txns)
        # A structurally identical piece with placeholder values.
        shape_unit = ScheduleUnit(
            txn_ids=(1,), reads=((("row", 5), 0),), writes=((("row", 5), 0),)
        )
        shape_piece = WrappedPiece(
            piece_index=0,
            units=(WrappedUnit(shape_unit, None, None),),
            start_digest=12345,
        )
        real = build_wrapped_circuit(
            piece, by_id, compiler, group, PRIME_BITS, 600, aggregated=True
        )
        shaped = build_wrapped_circuit(
            shape_piece, by_id, compiler, group, PRIME_BITS, 600, aggregated=True
        )
        assert real.structural_hash() == shaped.structural_hash()

    def test_aggregation_reduces_constraints(self, group):
        compiler = CircuitCompiler()
        txns = [increment(i, i) for i in range(1, 6)]
        by_id = {t.txn_id: t for t in txns}
        batch_unit = ScheduleUnit(
            txn_ids=tuple(t.txn_id for t in txns),
            reads=tuple(((("row", t.params["k"])), 0) for t in txns),
            writes=tuple(((("row", t.params["k"])), 0) for t in txns),
        )
        piece = WrappedPiece(
            piece_index=0,
            units=(WrappedUnit(batch_unit, None, None),),
            start_digest=1,
        )
        aggregated = piece_constraints(piece, by_id, compiler, 600, aggregated=True)
        unbatched = piece_constraints(piece, by_id, compiler, 600, aggregated=False)
        # One MemCheck+MemUpdate vs one per access: 2 vs 10 gadgets here.
        assert unbatched - aggregated == (10 - 2) * 600

    def test_memcheck_size_is_structural(self, group):
        compiler = CircuitCompiler()
        txns = [increment(1, 5)]
        by_id = {t.txn_id: t for t in txns}
        piece, _provider = wrapped_piece_for(group, txns)
        a = build_wrapped_circuit(piece, by_id, compiler, group, PRIME_BITS, 600, True)
        b = build_wrapped_circuit(piece, by_id, compiler, group, PRIME_BITS, 601, True)
        assert a.structural_hash() != b.structural_hash()

    def test_invariant_names_are_structural(self, group):
        from repro.core.consistency import SumInvariant

        compiler = CircuitCompiler()
        txns = [increment(1, 5)]
        by_id = {t.txn_id: t for t in txns}
        piece, _provider = wrapped_piece_for(group, txns)
        plain = build_wrapped_circuit(
            piece, by_id, compiler, group, PRIME_BITS, 600, True
        )
        with_invariant = build_wrapped_circuit(
            piece, by_id, compiler, group, PRIME_BITS, 600, True,
            invariants=(SumInvariant.over("row"),),
        )
        assert plain.structural_hash() != with_invariant.structural_hash()
