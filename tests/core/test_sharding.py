"""The sharded verification engine: ShardMap, routing, recovery.

The keyspace is partitioned across S independently verified engines
(DESIGN.md §14).  Single-shard transactions route directly to their owner;
cross-shard transactions go through the deterministic two-phase
reserve/release planner plus per-shard apply transactions.  The client
keeps one constant-size digest per shard.
"""

from __future__ import annotations

import os

import pytest

from repro.core import (
    DigestVector,
    DurabilityConfig,
    LitmusConfig,
    ShardMap,
    ShardedSession,
)
from repro.core.sharding import APPLY_SUFFIX, derive_apply_program
from repro.errors import ReproError
from repro.obs.metrics import MetricsRegistry
from repro.vc.program import (
    Add,
    Emit,
    KeyTemplate,
    Param,
    Program,
    ReadStmt,
    ReadVal,
    Sub,
    WriteStmt,
)

TRANSFER = Program(
    name="shard-transfer",
    params=("src", "dst", "amount"),
    statements=(
        ReadStmt("s", KeyTemplate(("acct", Param("src")))),
        ReadStmt("d", KeyTemplate(("acct", Param("dst")))),
        WriteStmt(
            KeyTemplate(("acct", Param("src"))), Sub(ReadVal("s"), Param("amount"))
        ),
        WriteStmt(
            KeyTemplate(("acct", Param("dst"))), Add(ReadVal("d"), Param("amount"))
        ),
        Emit(Add(ReadVal("s"), ReadVal("d"))),
    ),
)

NUM_ACCOUNTS = 16
CONFIG = LitmusConfig(
    cc="dr", processing_batch_size=2, batches_per_piece=2, prime_bits=64
)


def _initial():
    return {("acct", i): 100 for i in range(NUM_ACCOUNTS)}


def _balance(session):
    return sum(
        session.shards[session.shard_map.shard_of(("acct", i))].server.db.get(
            ("acct", i)
        )
        for i in range(NUM_ACCOUNTS)
    )


class TestShardMap:
    def test_deterministic_across_instances(self):
        a, b = ShardMap(4), ShardMap(4)
        keys = [("acct", i) for i in range(64)] + [("item", "x"), (b"raw", True)]
        assert [a.shard_of(k) for k in keys] == [b.shard_of(k) for k in keys]

    def test_single_shard_is_always_zero(self):
        sm = ShardMap(1)
        assert {sm.shard_of(("acct", i)) for i in range(32)} == {0}

    def test_all_shards_reachable(self):
        sm = ShardMap(4)
        seen = {sm.shard_of(("acct", i)) for i in range(256)}
        assert seen == {0, 1, 2, 3}

    def test_type_tagging_separates_confusable_keys(self):
        # ("1",) and (1,) must be free to land on different shards: the
        # encoding is type-tagged, not str()-flattened.  Stability of the
        # assignment itself is what matters here.
        sm = ShardMap(7)
        assert sm.shard_of(("1",)) == ShardMap(7).shard_of(("1",))
        assert sm.shard_of((1,)) == ShardMap(7).shard_of((1,))

    def test_partition(self):
        sm = ShardMap(3)
        rows = {("acct", i): i for i in range(30)}
        parts = sm.partition(rows)
        assert len(parts) == 3
        merged = {}
        for index, part in enumerate(parts):
            for key in part:
                assert sm.shard_of(key) == index
            merged.update(part)
        assert merged == rows

    def test_rejects_bad_counts(self):
        with pytest.raises(ReproError):
            ShardMap(0)


class TestApplyPrograms:
    def test_apply_companion_writes_final_values(self):
        apply = derive_apply_program(TRANSFER)
        assert apply.name == TRANSFER.name + APPLY_SUFFIX
        # Same write keys, but values come from parameters: re-executing is
        # idempotent and read-free on the value side.
        result = apply.execute(
            {"src": 0, "dst": 1, "amount": 5, "__w0": 95, "__w1": 105},
            lambda key: 0,
        )
        writes = dict(result.writes)
        assert writes == {("acct", 0): 95, ("acct", 1): 105}

    def test_param_collision_is_rejected(self):
        bad = Program(
            name="bad",
            params=("__w0",),
            statements=(
                WriteStmt(KeyTemplate(("k", Param("__w0"))), Param("__w0")),
            ),
        )
        with pytest.raises(ReproError):
            derive_apply_program(bad)


class TestShardedSession:
    def test_single_and_cross_shard_transfers(self, group):
        registry = MetricsRegistry()
        session = ShardedSession.create(
            initial=_initial(), config=CONFIG, num_shards=4, group=group,
            registry=registry,
        )
        try:
            sm = session.shard_map
            # one same-shard pair and several cross-shard pairs
            by_shard: dict[int, list[int]] = {}
            for i in range(NUM_ACCOUNTS):
                by_shard.setdefault(sm.shard_of(("acct", i)), []).append(i)
            same = next(accts for accts in by_shard.values() if len(accts) >= 2)
            tickets = [
                session.submit("u", TRANSFER, src=same[0], dst=same[1], amount=3)
            ]
            for i in range(4):
                src = same[0]
                dst = next(
                    j
                    for j in range(NUM_ACCOUNTS)
                    if sm.shard_of(("acct", j)) != sm.shard_of(("acct", src))
                )
                tickets.append(
                    session.submit("u", TRANSFER, src=src, dst=dst, amount=1)
                )
            result = session.flush()
            assert result.accepted, result.reason
            assert all(t.accepted for t in tickets)
            # the same-shard transfer sees pristine balances; the cross
            # transfers reuse its src account, so they emit 97 + 100
            assert tickets[0].outputs == (200,)
            assert all(t.outputs == (197,) for t in tickets[1:])
            assert _balance(session) == NUM_ACCOUNTS * 100
            assert registry.counter("shard.single_txns").value == 1
            assert registry.counter("shard.cross_txns").value == 4
            digest = session.digest
            assert isinstance(digest, DigestVector) and len(digest) == 4
            # every shard that took work moved off its genesis digest;
            # per-shard digests are the per-shard client/server agreement
            for shard in session.shards:
                assert shard.digest == DigestVector.single(shard.server.digest)
        finally:
            session.close()

    def test_submit_rejects_apply_names(self, group):
        session = ShardedSession.create(
            initial=_initial(), config=CONFIG, num_shards=2, group=group,
            registry=MetricsRegistry(),
        )
        try:
            apply = derive_apply_program(TRANSFER)
            with pytest.raises(ReproError):
                session.submit("u", apply, src=0, dst=1, amount=1, __w0=0, __w1=0)
        finally:
            session.close()

    def test_flush_failure_requeues_instead_of_double_submitting(self, group):
        from repro.errors import DeadlineExceeded

        session = ShardedSession.create(
            initial=_initial(), config=CONFIG, num_shards=2, group=group,
            registry=MetricsRegistry(),
        )
        try:
            session.submit("u", TRANSFER, src=0, dst=1, amount=1)
            with pytest.raises(DeadlineExceeded):
                session.flush(deadline=0.0)  # already expired
            # the call went back to the global queue, not a shard's
            assert session.queued == 1
            for shard in session.shards:
                assert shard.queued == 0
            result = session.flush()
            assert result.accepted and result.num_txns == 1
            assert _balance(session) == NUM_ACCOUNTS * 100
        finally:
            session.close()

    def test_recover_round_trip(self, group, tmp_path):
        directory = str(tmp_path / "sharded")
        session = ShardedSession.create(
            initial=_initial(), config=CONFIG, num_shards=3, group=group,
            registry=MetricsRegistry(),
            durability=DurabilityConfig(directory=directory),
        )
        session.submit("u", TRANSFER, src=0, dst=1, amount=5)
        session.submit("u", TRANSFER, src=2, dst=9, amount=7)
        assert session.flush().accepted
        digest_before = DigestVector(session.digest.shards)
        session.close()
        assert sorted(os.listdir(directory)) == [
            "shard-00", "shard-01", "shard-02", "xshard-intents.log",
        ]

        recovered = ShardedSession.recover(
            directory, [TRANSFER], group=group, registry=MetricsRegistry()
        )
        try:
            assert recovered.num_shards == 3
            assert len(recovered.recovery_reports) == 3
            assert recovered.digest == digest_before
            assert _balance(recovered) == NUM_ACCOUNTS * 100
            # liveness, including the cross-shard path, post-recovery
            ticket = recovered.submit("u", TRANSFER, src=0, dst=9, amount=2)
            assert recovered.flush().accepted and ticket.accepted
        finally:
            recovered.close()

    def test_recover_rejects_non_contiguous_layout(self, group, tmp_path):
        directory = str(tmp_path / "holes")
        os.makedirs(os.path.join(directory, "shard-00"))
        os.makedirs(os.path.join(directory, "shard-02"))
        with pytest.raises(ReproError):
            ShardedSession.recover(directory, [TRANSFER], group=group)

    def test_create_rejects_bad_shard_count(self, group):
        with pytest.raises(ReproError):
            ShardedSession.create(
                initial=_initial(), config=CONFIG, num_shards=0, group=group
            )
