"""Tests for the AD-Interact and Merkle baselines plus hybrid mode."""

from __future__ import annotations

import pytest

from repro.core.hybrid import HybridLitmus
from repro.core.interactive import InteractiveServerClient
from repro.core.merkle_server import MerkleServerClient
from repro.core.config import LitmusConfig
from repro.sim.costmodel import CostModel
from repro.sim.network import LAN, WAN

from ..db.helpers import increment, read_only, transfer

PRIME_BITS = 64
INITIAL = {("acct", 0): 100, ("acct", 1): 100, ("acct", 2): 100, ("acct", 3): 100}


class TestInteractive:
    def test_serial_execution_and_verification(self, group):
        system = InteractiveServerClient(
            group, initial=INITIAL, network=LAN, prime_bits=PRIME_BITS
        )
        txns = [transfer(i, i % 4, (i + 1) % 4, 5) for i in range(1, 7)]
        report = system.run(txns)
        assert len(report.results) == 6
        assert all(r.committed for r in report.results)
        assert report.final_digest == system.provider.digest

    def test_digest_advances_with_writes(self, group):
        system = InteractiveServerClient(group, initial=INITIAL, prime_bits=PRIME_BITS)
        before = system.digest
        system.run([increment(1, 5)])
        assert system.digest != before

    def test_read_only_keeps_digest(self, group):
        system = InteractiveServerClient(group, initial=INITIAL, prime_bits=PRIME_BITS)
        before = system.digest
        system.run([read_only(1, 0)])
        assert system.digest == before

    def test_wan_slower_than_lan(self, group):
        lan = InteractiveServerClient(group, initial=INITIAL, network=LAN, prime_bits=PRIME_BITS)
        wan = InteractiveServerClient(group, initial=INITIAL, network=WAN, prime_bits=PRIME_BITS)
        txns = [increment(i, i) for i in range(1, 6)]
        assert wan.run(txns).total_seconds > lan.run(list(txns)).total_seconds

    def test_witness_cost_grows_with_dictionary(self, group):
        model = CostModel.calibrated(10)
        small = InteractiveServerClient(
            group, initial={("a", 0): 1}, cost_model=model, prime_bits=PRIME_BITS
        )
        big_initial = {("a", i): 1 for i in range(200)}
        big = InteractiveServerClient(
            group, initial=big_initial, cost_model=model, prime_bits=PRIME_BITS
        )
        txn = [read_only(1, 0)]
        slow = big.run(txn).total_seconds
        fast = small.run([read_only(1, 0)]).total_seconds
        assert slow > fast


class TestMerkleBaseline:
    def test_roundtrip(self):
        system = MerkleServerClient(capacity=64, initial=INITIAL)
        txns = [transfer(i, i % 4, (i + 1) % 4, 5) for i in range(1, 7)]
        report = system.run(txns)
        assert all(r.committed for r in report.results)
        assert report.hash_operations > 0
        assert report.final_root == system.tree.root

    def test_root_tracks_state(self):
        system = MerkleServerClient(capacity=64, initial=INITIAL)
        before = system.client_root
        system.run([increment(1, 9)])
        assert system.client_root != before

    def test_capacity_limit(self):
        from repro.errors import VerificationFailure

        system = MerkleServerClient(capacity=2, initial={("a", 0): 1, ("a", 1): 2})
        with pytest.raises(VerificationFailure):
            system.run([increment(1, 99)])

    def test_slow_by_design(self):
        system = MerkleServerClient(capacity=64, initial=INITIAL)
        report = system.run([increment(i, i % 4) for i in range(1, 11)])
        assert report.throughput < 25  # the paper: < 20 txn/s territory


class TestHybrid:
    def test_interactive_and_batch_share_digest(self, group):
        config = LitmusConfig(
            cc="dr", processing_batch_size=8, batches_per_piece=2, prime_bits=PRIME_BITS
        )
        hybrid = HybridLitmus(initial=INITIAL, config=config, group=group)
        txns = [transfer(i, i % 4, (i + 1) % 4, 2) for i in range(1, 9)]
        outcome = hybrid.run(txns, interactive_ids={1, 2})
        assert outcome.accepted
        assert set(outcome.interactive_outputs) == {1, 2}
        assert outcome.batch_verdict is not None
        assert outcome.batch_verdict.accepted, outcome.batch_verdict.reason

    def test_all_interactive(self, group):
        config = LitmusConfig(cc="dr", prime_bits=PRIME_BITS)
        hybrid = HybridLitmus(initial=INITIAL, config=config, group=group)
        txns = [increment(i, i) for i in range(1, 4)]
        outcome = hybrid.run(txns, interactive_ids={1, 2, 3})
        assert outcome.accepted
        assert outcome.batch_verdict is None
        assert len(outcome.interactive_outputs) == 3

    def test_interactive_latency_lower_than_batch(self, group):
        config = LitmusConfig(
            cc="dr", processing_batch_size=8, batches_per_piece=2, prime_bits=PRIME_BITS
        )
        hybrid = HybridLitmus(initial=INITIAL, config=config, group=group)
        txns = [transfer(i, i % 4, (i + 1) % 4, 2) for i in range(1, 9)]
        outcome = hybrid.run(txns, interactive_ids={1})
        per_interactive = outcome.interactive_seconds / 1
        assert per_interactive < outcome.batch_seconds
