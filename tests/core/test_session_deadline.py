"""Deadline propagation into ``LitmusSession.flush``: cancel, never desync.

The contract: a deadline that expires at a stage boundary cancels the
round — server rolled back to the last verified state, transactions
re-queued in order, tickets unresolved, digest chain unmoved — and a
later flush commits the same work.  The check deliberately sits *before*
verification: once the client's digest advances the work must be acked.
"""

from __future__ import annotations

import time

import pytest

from repro.core import LitmusConfig, LitmusSession
from repro.errors import DeadlineExceeded
from repro.obs.metrics import MetricsRegistry
from repro.vc.program import (
    Add,
    Emit,
    KeyTemplate,
    Param,
    Program,
    ReadStmt,
    ReadVal,
    Sub,
    WriteStmt,
)

TRANSFER = Program(
    name="dl-transfer",
    params=("src", "dst", "amount"),
    statements=(
        ReadStmt("s", KeyTemplate(("acct", Param("src")))),
        ReadStmt("d", KeyTemplate(("acct", Param("dst")))),
        WriteStmt(
            KeyTemplate(("acct", Param("src"))), Sub(ReadVal("s"), Param("amount"))
        ),
        WriteStmt(
            KeyTemplate(("acct", Param("dst"))), Add(ReadVal("d"), Param("amount"))
        ),
        Emit(Add(ReadVal("s"), ReadVal("d"))),
    ),
)

CONFIG = LitmusConfig(
    cc="dr", processing_batch_size=2, batches_per_piece=2, prime_bits=64
)


class SlowRequestPlan:
    """A minimal fault-plan stand-in that stalls the request stage.

    Sleeping in ``on_request`` pushes the wall clock past the deadline
    while the server executes, which deterministically lands the flush in
    the post-execute / pre-verify cancellation branch.
    """

    rng = None

    def __init__(self, delay: float):
        self.delay = delay

    def bind_registry(self, registry) -> None:
        pass

    def on_request(self, txns) -> None:
        time.sleep(self.delay)

    def on_response(self, response):
        return response

    def on_certificates(self, unit_index, read_cert, write_cert):
        return read_cert, write_cert

    def on_prove(self, piece_index) -> None:
        pass

    def on_durability(self, name) -> None:
        pass


def _session(group, registry=None, fault_plan=None) -> LitmusSession:
    return LitmusSession.create(
        initial={("acct", i): 100 for i in range(8)},
        config=CONFIG,
        group=group,
        registry=registry,
        fault_plan=fault_plan,
    )


class TestPreAttemptExpiry:
    def test_expired_deadline_requeues_and_raises(self, group):
        registry = MetricsRegistry()
        session = _session(group, registry=registry)
        ticket = session.submit("alice", TRANSFER, src=0, dst=1, amount=10)
        with pytest.raises(DeadlineExceeded):
            session.flush(deadline=time.monotonic() - 1.0)
        assert not ticket.resolved
        assert session.queued == 1
        assert session.batches_verified == 0
        assert registry.counter("session.deadline_aborts").value == 1

    def test_requeued_work_keeps_submission_order(self, group):
        session = _session(group)
        first = session.submit("alice", TRANSFER, src=0, dst=1, amount=1)
        with pytest.raises(DeadlineExceeded):
            session.flush(deadline=time.monotonic() - 1.0)
        second = session.submit("bob", TRANSFER, src=2, dst=3, amount=1)
        result = session.flush()
        assert result.accepted and result.num_txns == 2
        # Priority order == submission order: the re-queued txn runs first.
        assert [t.txn_id for t in result.tickets] == [first.txn_id, second.txn_id]


class TestMidExecutionExpiry:
    def test_overrun_rolls_back_before_verification(self, group):
        registry = MetricsRegistry()
        session = _session(
            group, registry=registry, fault_plan=SlowRequestPlan(delay=0.15)
        )
        ticket = session.submit("alice", TRANSFER, src=0, dst=1, amount=10)
        server_digest_before = session.server.digest
        client_digest_before = session.digest
        with pytest.raises(DeadlineExceeded):
            session.flush(deadline=time.monotonic() + 0.05)
        # Cancelled, not half-committed: both digests are where they were,
        # the server state was rolled back, the work survives.
        assert session.server.digest == server_digest_before
        assert session.digest == client_digest_before
        assert not ticket.resolved
        assert session.queued == 1
        assert registry.counter("session.deadline_aborts").value == 1

    def test_later_flush_commits_the_cancelled_round(self, group):
        session = _session(group, fault_plan=SlowRequestPlan(delay=0.05))
        ticket = session.submit("alice", TRANSFER, src=0, dst=1, amount=10)
        with pytest.raises(DeadlineExceeded):
            session.flush(deadline=time.monotonic() + 0.01)
        result = session.flush()  # no deadline: plenty of time now
        assert result.accepted and result.num_txns == 1
        assert ticket.accepted and ticket.outputs == (200,)
        assert session.digest == session.server.digest
        assert session.server.db.get(("acct", 0)) == 90

    def test_digest_chain_never_moves_for_a_cancelled_round(self, group):
        session = _session(group, fault_plan=SlowRequestPlan(delay=0.05))
        session.submit("alice", TRANSFER, src=0, dst=1, amount=10)
        chain_before = session.digest_log.latest_digest
        with pytest.raises(DeadlineExceeded):
            session.flush(deadline=time.monotonic() + 0.01)
        assert session.digest_log.latest_digest == chain_before
        assert session.batches_verified == 0


class TestNoDeadline:
    def test_none_deadline_is_the_old_behavior(self, group):
        session = _session(group)
        session.submit("alice", TRANSFER, src=0, dst=1, amount=10)
        assert session.flush(deadline=None).accepted
