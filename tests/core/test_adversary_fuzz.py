"""Property-based adversary: random response mutations must never verify.

The client's acceptance predicate must be *closed*: any semantic change to
a server response — outputs, digests, batch composition, proofs — flips it
to reject.  Hypothesis drives a mutation engine over real responses.
"""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import LitmusClient, LitmusConfig, LitmusServer

from ..db.helpers import increment, transfer

PRIME_BITS = 64


@pytest.fixture(scope="module")
def session(group):
    """One server response shared by every mutation case."""
    config = LitmusConfig(
        cc="dr", processing_batch_size=4, batches_per_piece=1, prime_bits=PRIME_BITS
    )
    initial = {("acct", i): 100 for i in range(4)}
    server = LitmusServer(initial=initial, config=config, group=group)
    txns = [transfer(i, i % 4, (i + 1) % 4, 3) for i in range(1, 9)]
    txns += [increment(i, i) for i in range(9, 13)]
    response = server.execute_batch(txns)
    return group, config, server.digest, txns, response


def fresh_client(session):
    group, config, _final, _txns, response = session
    return LitmusClient(group, response.initial_digest, config=config)


def mutate(response, piece_index: int, field_name: str, mutation: str):
    """Apply one mutation to one piece; returns the forged response."""
    piece = response.pieces[piece_index]
    if field_name == "outputs":
        if not piece.outputs:
            return None
        txn_id, values = piece.outputs[0]
        new_values = tuple(v + 1 for v in values) if values else (123,)
        outputs = ((txn_id, new_values),) + piece.outputs[1:]
        forged = dataclasses.replace(piece, outputs=outputs)
    elif field_name == "end_digest":
        forged = dataclasses.replace(piece, end_digest=piece.end_digest ^ (1 << 5))
    elif field_name == "start_digest":
        forged = dataclasses.replace(piece, start_digest=piece.start_digest ^ (1 << 9))
    elif field_name == "all_commit":
        if not piece.all_commit:
            return None
        forged = dataclasses.replace(piece, all_commit=False)
    elif field_name == "proof_payload":
        proof = piece.proof
        payload = bytes(b ^ 0x41 for b in proof.payload[:8]) + proof.payload[8:]
        forged = dataclasses.replace(piece, proof=dataclasses.replace(proof, payload=payload))
    elif field_name == "txn_ids":
        if len(piece.txn_ids) < 2:
            return None
        if mutation == "drop":
            forged = dataclasses.replace(
                piece,
                txn_ids=piece.txn_ids[:-1],
                unit_txn_ids=tuple(u for u in piece.unit_txn_ids[:-1]),
            )
        else:  # duplicate
            forged = dataclasses.replace(
                piece,
                txn_ids=piece.txn_ids + (piece.txn_ids[0],),
                unit_txn_ids=piece.unit_txn_ids + ((piece.txn_ids[0],),),
            )
    elif field_name == "public_values":
        values = list(piece.public_values)
        values[-1] = (values[-1] + 1) % (1 << 128)
        forged = dataclasses.replace(piece, public_values=tuple(values))
    else:  # pragma: no cover - strategy covers only the names above
        raise AssertionError(field_name)
    pieces = list(response.pieces)
    pieces[piece_index] = forged
    return dataclasses.replace(response, pieces=tuple(pieces))


FIELDS = (
    "outputs",
    "end_digest",
    "start_digest",
    "all_commit",
    "proof_payload",
    "txn_ids",
    "public_values",
)


class TestMutationFuzz:
    def test_honest_response_accepted(self, session):
        _group, _config, final, txns, response = session
        client = fresh_client(session)
        verdict = client.verify_response(txns, response)
        assert verdict.accepted, verdict.reason
        assert verdict.new_digest == final

    @given(
        piece=st.integers(min_value=0, max_value=10),
        field_name=st.sampled_from(FIELDS),
        mutation=st.sampled_from(("drop", "dup")),
    )
    @settings(max_examples=60, deadline=None)
    def test_every_mutation_rejected(self, session, piece, field_name, mutation):
        _group, _config, _final, txns, response = session
        piece_index = piece % len(response.pieces)
        forged = mutate(response, piece_index, field_name, mutation)
        if forged is None:
            return
        client = fresh_client(session)
        verdict = client.verify_response(txns, forged)
        assert not verdict.accepted, (
            f"mutation {field_name}/{mutation} on piece {piece_index} "
            "was accepted"
        )

    def test_cross_state_piece_splice_rejected(self, group, session):
        """A valid piece proven against *different database contents* cannot
        be spliced in: its digests do not chain with this session's."""
        _g, config, _final, txns, response = session
        other_server = LitmusServer(
            initial={("acct", i): 777 for i in range(4)}, config=config, group=group
        )
        other_response = other_server.execute_batch(list(txns))
        assert other_response.pieces[0].start_digest != response.pieces[0].start_digest
        spliced = dataclasses.replace(
            response,
            pieces=(other_response.pieces[0],) + response.pieces[1:],
        )
        client = fresh_client(session)
        assert not client.verify_response(txns, spliced).accepted
