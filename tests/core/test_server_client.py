"""End-to-end tests: Litmus server + client, honest and adversarial."""

from __future__ import annotations

import dataclasses

import pytest

from repro.core import LitmusClient, LitmusConfig, LitmusServer, SumInvariant
from repro.errors import ConstraintViolation

from ..db.helpers import blind_write, increment, read_only, transfer

PRIME_BITS = 64


def make_pair(group, cc="dr", backend="groth16", invariants=(), **config_kwargs):
    config = LitmusConfig(
        cc=cc,
        processing_batch_size=8,
        batches_per_piece=2,
        prime_bits=PRIME_BITS,
        backend=backend,
        num_db_threads=2,
        **config_kwargs,
    )
    initial = {("acct", i): 100 for i in range(4)}
    server = LitmusServer(
        initial=initial, config=config, group=group, invariants=invariants
    )
    client = LitmusClient(
        group, server.digest, config=config, invariants=invariants
    )
    return server, client


class TestHonestFlow:
    def test_dr_batch_accepted(self, group):
        server, client = make_pair(group, cc="dr")
        txns = [transfer(i, i % 4, (i + 1) % 4, 5) for i in range(1, 13)]
        response = server.execute_batch(txns)
        verdict = client.verify_response(txns, response)
        assert verdict.accepted, verdict.reason
        assert verdict.new_digest == server.digest

    def test_2pl_batch_accepted(self, group):
        server, client = make_pair(group, cc="2pl")
        txns = [transfer(i, i % 4, (i + 1) % 4, 5) for i in range(1, 9)]
        response = server.execute_batch(txns)
        verdict = client.verify_response(txns, response)
        assert verdict.accepted, verdict.reason

    def test_spotcheck_backend_accepted(self, group):
        server, client = make_pair(group, backend="spotcheck")
        txns = [increment(i, i % 3) for i in range(1, 7)]
        response = server.execute_batch(txns)
        verdict = client.verify_response(txns, response)
        assert verdict.accepted, verdict.reason

    def test_outputs_are_returned(self, group):
        server, client = make_pair(group)
        txns = [read_only(1, 0), increment(2, 1)]
        response = server.execute_batch(txns)
        verdict = client.verify_response(txns, response)
        assert verdict.accepted
        assert verdict.outputs[1] == (0,)  # key ("row", 0) starts absent -> 0

    def test_sequential_batches_chain_digests(self, group):
        server, client = make_pair(group)
        first = [increment(i, 1) for i in range(1, 4)]
        second = [increment(i, 1) for i in range(4, 7)]
        r1 = server.execute_batch(first)
        assert client.verify_response(first, r1).accepted
        r2 = server.execute_batch(second)
        verdict = client.verify_response(second, r2)
        assert verdict.accepted
        assert server.db.get(("row", 1)) == 6

    def test_multiple_pieces(self, group):
        server, client = make_pair(group)
        txns = [increment(i, i) for i in range(1, 21)]
        response = server.execute_batch(txns)
        assert len(response.pieces) >= 1
        verdict = client.verify_response(txns, response)
        assert verdict.accepted

    def test_timing_report_populated(self, group):
        server, client = make_pair(group)
        txns = [increment(i, i) for i in range(1, 9)]
        response = server.execute_batch(txns)
        timing = response.timing
        assert timing.num_txns == 8
        assert timing.total_seconds > 0
        assert timing.total_constraints > 0
        assert timing.throughput > 0
        assert timing.proof_bytes >= 312


class TestAdversarialServer:
    """Every tampering attempt must be rejected by the client."""

    def run_honest(self, group, txns):
        server, client = make_pair(group)
        response = server.execute_batch(txns)
        return server, client, response

    def test_tampered_output_rejected(self, group):
        txns = [increment(i, 1) for i in range(1, 5)]
        _server, client, response = self.run_honest(group, txns)
        piece0 = response.pieces[0]
        tampered_outputs = tuple(
            (txn_id, (999,)) for txn_id, _values in piece0.outputs
        )
        forged_piece = dataclasses.replace(piece0, outputs=tampered_outputs)
        forged = dataclasses.replace(
            response, pieces=(forged_piece,) + response.pieces[1:]
        )
        verdict = client.verify_response(txns, forged)
        assert not verdict.accepted

    def test_tampered_final_digest_rejected(self, group):
        txns = [increment(i, 1) for i in range(1, 5)]
        _server, client, response = self.run_honest(group, txns)
        forged = dataclasses.replace(response, final_digest=response.final_digest + 1)
        verdict = client.verify_response(txns, forged)
        assert not verdict.accepted

    def test_dropped_piece_rejected(self, group):
        txns = [increment(i, i) for i in range(1, 21)]
        _server, client, response = self.run_honest(group, txns)
        assert len(response.pieces) > 1
        forged = dataclasses.replace(response, pieces=response.pieces[:-1])
        verdict = client.verify_response(txns, forged)
        assert not verdict.accepted
        assert "cover" in verdict.reason

    def test_conflicting_batch_claim_rejected(self, group):
        # Claim two conflicting increments ran in one non-conflicting batch.
        txns = [increment(1, 7), increment(2, 7)]
        _server, client, response = self.run_honest(group, txns)
        merged_unit_ids = ((1, 2),)
        piece0 = response.pieces[0]
        forged_piece = dataclasses.replace(
            piece0,
            unit_txn_ids=merged_unit_ids,
            txn_ids=(1, 2),
        )
        forged = dataclasses.replace(response, pieces=(forged_piece,))
        verdict = client.verify_response(txns, forged)
        assert not verdict.accepted

    def test_foreign_verification_key_rejected(self, group):
        txns = [increment(i, i) for i in range(1, 4)]
        server, client, response = self.run_honest(group, txns)
        # Set up a different circuit and use its (valid) key.
        from repro.vc.circuit import CircuitBuilder

        builder = CircuitBuilder(label="decoy")
        builder.input("statement_lo")
        builder.input("statement_hi")
        decoy = builder.build()
        _pk, decoy_vk = server.backend.setup(decoy)
        piece0 = response.pieces[0]
        forged_piece = dataclasses.replace(piece0, verification_key=decoy_vk)
        forged = dataclasses.replace(
            response, pieces=(forged_piece,) + response.pieces[1:]
        )
        verdict = client.verify_response(txns, forged)
        assert not verdict.accepted

    def test_swapped_proofs_rejected(self, group):
        txns = [increment(i, i) for i in range(1, 21)]
        _server, client, response = self.run_honest(group, txns)
        assert len(response.pieces) >= 2
        p0, p1 = response.pieces[0], response.pieces[1]
        forged = dataclasses.replace(
            response,
            pieces=(
                dataclasses.replace(p0, proof=p1.proof),
                dataclasses.replace(p1, proof=p0.proof),
            )
            + response.pieces[2:],
        )
        verdict = client.verify_response(txns, forged)
        assert not verdict.accepted

    def test_server_cannot_prove_tampered_data(self, group):
        """If the server's store is corrupted between runs, proving fails
        internally (the circuit replay catches the inconsistency)."""
        server, client = make_pair(group)
        txns = [increment(1, 1)]
        server.execute_batch(txns)
        # Corrupt the database behind the provider's back.
        server.db.put(("row", 1), 999)
        follow_up = [read_only(2, 1)]
        from repro.errors import IntegrityError

        with pytest.raises((ConstraintViolation, IntegrityError)):
            server.execute_batch(follow_up)


class TestInvariants:
    def test_preserving_transfers_accepted(self, group):
        invariant = SumInvariant.over("acct")
        server, client = make_pair(group, invariants=(invariant,))
        txns = [transfer(i, i % 4, (i + 1) % 4, 3) for i in range(1, 9)]
        response = server.execute_batch(txns)
        verdict = client.verify_response(txns, response)
        assert verdict.accepted, verdict.reason

    def test_minting_money_flagged(self, group):
        invariant = SumInvariant.over("acct")
        server, client = make_pair(group, invariants=(invariant,))
        # A blind write into the covered key family changes the sum.
        from repro.db.txn import Transaction
        from repro.vc.program import Const, KeyTemplate, Param, Program, WriteStmt

        minting = Program(
            name="mint",
            params=("k",),
            statements=(
                WriteStmt(KeyTemplate(("acct", Param("k"))), Const(10_000)),
            ),
        )
        txns = [Transaction(1, minting, {"k": 0})]
        response = server.execute_batch(txns)
        # The replay zeroes AllCommit; the client must reject the batch.
        assert not response.pieces[0].all_commit
        verdict = client.verify_response(txns, response)
        assert not verdict.accepted

    def test_unrelated_writes_do_not_trip_invariant(self, group):
        invariant = SumInvariant.over("acct")
        server, client = make_pair(group, invariants=(invariant,))
        txns = [blind_write(1, 5, 123)]  # writes ("row", 5): uncovered family
        response = server.execute_batch(txns)
        verdict = client.verify_response(txns, response)
        assert verdict.accepted, verdict.reason
