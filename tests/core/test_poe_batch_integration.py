"""Batched-PoE integration: provider piece proofs, checker deferral, server path."""

from __future__ import annotations

import dataclasses

import pytest

from repro.core import LitmusClient, LitmusConfig, LitmusServer
from repro.core.memory_integrity import (
    POE_MODE_BATCH,
    MemoryIntegrityChecker,
    MemoryIntegrityProvider,
)
from repro.crypto.poe import PoEBatchProof

from ..db.helpers import increment, transfer

PRIME_BITS = 64


@pytest.fixture()
def batch_provider(group) -> MemoryIntegrityProvider:
    return MemoryIntegrityProvider(
        group,
        initial={("row", i): 10 * i for i in range(8)},
        prime_bits=PRIME_BITS,
        use_poe=POE_MODE_BATCH,
    )


class TestProviderBatchMode:
    def test_batch_mode_mints_bare_lookups(self, batch_provider):
        cert = batch_provider.certify_reads({("row", 1): 10})
        assert cert.lookup is not None
        assert cert.poe is None

    def test_piece_proof_covers_all_certificates(self, group, batch_provider):
        checker = MemoryIntegrityChecker(group, batch_provider.digest, PRIME_BITS)
        certs = [
            batch_provider.certify_reads({("row", 1): 10, ("row", 2): 20}),
            batch_provider.certify_reads({("row", 3): 30}),
            batch_provider.certify_reads({("row", 5): 50, ("row", 7): 70}),
        ]
        proof = batch_provider.certify_piece_poe(certs)
        assert isinstance(proof, PoEBatchProof)
        assert proof.count == 3
        for cert in certs:
            assert checker.mem_check(cert, defer_poe=True)
        assert checker.deferred_instances == 3
        assert checker.verify_deferred_poe(proof)
        assert checker.deferred_instances == 0  # queue drained

    def test_no_instances_yields_no_proof(self, batch_provider):
        # Absent-only certificate: nothing to cover.
        cert = batch_provider.certify_reads({("ghost", 1): 0})
        assert batch_provider.certify_piece_poe([cert, None]) is None

    def test_individual_poe_mode_unaffected(self, group):
        provider = MemoryIntegrityProvider(
            group,
            initial={("row", 1): 10},
            prime_bits=PRIME_BITS,
            use_poe=True,
        )
        cert = provider.certify_reads({("row", 1): 10})
        assert cert.poe is not None
        # Certificates that already carry a PoE are excluded from batches.
        assert provider.certify_piece_poe([cert]) is None


class TestCheckerDeferral:
    def test_deferred_tampered_value_fails_batch(self, group, batch_provider):
        checker = MemoryIntegrityChecker(group, batch_provider.digest, PRIME_BITS)
        good = batch_provider.certify_reads({("row", 1): 10})
        forged = dataclasses.replace(good, present=((("row", 1), 11),))
        proof = batch_provider.certify_piece_poe([good])
        assert checker.mem_check(forged, defer_poe=True)  # deferred, not yet caught
        assert not checker.verify_deferred_poe(proof)

    def test_missing_batch_proof_rejected(self, group, batch_provider):
        checker = MemoryIntegrityChecker(group, batch_provider.digest, PRIME_BITS)
        cert = batch_provider.certify_reads({("row", 1): 10})
        assert checker.mem_check(cert, defer_poe=True)
        assert not checker.verify_deferred_poe(None)

    def test_unexpected_batch_proof_rejected(self, group, batch_provider):
        checker = MemoryIntegrityChecker(group, batch_provider.digest, PRIME_BITS)
        cert = batch_provider.certify_reads({("row", 1): 10})
        proof = batch_provider.certify_piece_poe([cert])
        # Nothing was deferred — a stray proof must not be accepted.
        assert not checker.verify_deferred_poe(proof)

    def test_digest_binding_still_immediate(self, group, batch_provider):
        checker = MemoryIntegrityChecker(group, batch_provider.digest + 1, PRIME_BITS)
        cert = batch_provider.certify_reads({("row", 1): 10})
        assert not checker.mem_check(cert, defer_poe=True)
        assert checker.deferred_instances == 0

    def test_non_canonical_witness_rejected_before_deferral(
        self, group, batch_provider
    ):
        from repro.crypto.authdict import LookupProof

        checker = MemoryIntegrityChecker(group, batch_provider.digest, PRIME_BITS)
        cert = batch_provider.certify_reads({("row", 1): 10})
        shifted = dataclasses.replace(
            cert, lookup=LookupProof(witness=cert.lookup.witness + group.modulus)
        )
        assert not checker.mem_check(shifted, defer_poe=True)
        assert checker.deferred_instances == 0


class TestBatchedEndToEnd:
    def _run(self, group, **overrides):
        config = LitmusConfig(
            cc="dr",
            processing_batch_size=8,
            prime_bits=PRIME_BITS,
            use_poe=True,
            **overrides,
        )
        initial = {("acct", i): 100 for i in range(4)}
        server = LitmusServer(initial=initial, config=config, group=group)
        client = LitmusClient(group, server.digest, config=config)
        txns = [transfer(i, i % 4, (i + 1) % 4, 5) for i in range(1, 9)]
        txns += [increment(i, i) for i in range(9, 13)]
        response = server.execute_batch(txns)
        verdict = client.verify_response(txns, response)
        return server, response, verdict

    def test_batched_poe_accepted_by_client(self, group):
        server, _response, verdict = self._run(group, batched_poe=True)
        assert server.provider.use_poe == POE_MODE_BATCH
        assert verdict.accepted, verdict.reason

    def test_batched_and_unbatched_digests_agree(self, group):
        _s1, r1, v1 = self._run(group, batched_poe=True)
        _s2, r2, v2 = self._run(group, batched_poe=False)
        assert v1.accepted and v2.accepted
        assert r1.final_digest == r2.final_digest

    def test_tampered_certificate_rejected_under_batching(self, group):
        from repro.faults.injectors import BitFlipWitness
        from repro.faults.plan import FaultPlan

        config = LitmusConfig(
            cc="dr",
            processing_batch_size=8,
            prime_bits=PRIME_BITS,
            use_poe=True,
            batched_poe=True,
        )
        initial = {("acct", i): 100 for i in range(4)}
        plan = FaultPlan(BitFlipWitness(unit=0, which="read"))
        server = LitmusServer(
            initial=initial, config=config, group=group, fault_plan=plan
        )
        client = LitmusClient(group, server.digest, config=config)
        txns = [transfer(i, i % 4, (i + 1) % 4, 5) for i in range(1, 9)]
        response = server.execute_batch(txns)
        verdict = client.verify_response(txns, response)
        assert not verdict.accepted
