"""Tests for the client digest log (checkpointing)."""

from __future__ import annotations

import json

import pytest

from repro.core.checkpoint import DigestLog
from repro.errors import VerificationFailure


class TestDigestLog:
    def test_genesis_entry(self):
        log = DigestLog(initial_digest=123)
        assert len(log) == 1
        assert log.latest_digest == 123

    def test_record_advances(self):
        log = DigestLog(initial_digest=1)
        log.record(2, num_txns=10)
        log.record(3, num_txns=20)
        assert log.latest_digest == 3
        assert len(log) == 3
        log.verify_chain()

    def test_roundtrip_json(self):
        log = DigestLog(initial_digest=0xABCDEF)
        log.record(0x123456, num_txns=7)
        restored = DigestLog.from_json(log.to_json())
        assert restored.latest_digest == log.latest_digest
        assert restored.latest_hash == log.latest_hash

    def test_tampered_digest_detected(self):
        log = DigestLog(initial_digest=1)
        log.record(2, num_txns=10)
        payload = json.loads(log.to_json())
        payload[1]["digest"] = hex(999)
        with pytest.raises(VerificationFailure):
            DigestLog.from_json(json.dumps(payload))

    def test_tampered_count_detected(self):
        log = DigestLog(initial_digest=1)
        log.record(2, num_txns=10)
        payload = json.loads(log.to_json())
        payload[1]["num_txns"] = 99
        with pytest.raises(VerificationFailure):
            DigestLog.from_json(json.dumps(payload))

    def test_truncation_survives_but_tail_hash_differs(self):
        """Dropping the tail yields a valid but *shorter* chain — the client
        detects it by comparing against any remembered entry hash."""
        log = DigestLog(initial_digest=1)
        log.record(2, num_txns=10)
        remembered = log.latest_hash
        payload = json.loads(log.to_json())[:-1]
        truncated = DigestLog.from_json(json.dumps(payload))
        assert truncated.latest_hash != remembered

    def test_empty_log_rejected(self):
        with pytest.raises(VerificationFailure):
            DigestLog.from_json("[]")

    def test_resume_flow_with_litmus(self, group):
        """A client restart from the persisted log resumes verification."""
        from repro.core import LitmusClient, LitmusConfig, LitmusServer

        from ..db.helpers import increment

        config = LitmusConfig(cc="dr", processing_batch_size=8, prime_bits=64)
        server = LitmusServer(initial={}, config=config, group=group)
        client = LitmusClient(group, server.digest, config=config)
        log = DigestLog(initial_digest=server.digest)

        first = [increment(i, 1) for i in range(1, 4)]
        verdict = client.verify_response(first, server.execute_batch(first))
        assert verdict.accepted
        log.record(verdict.new_digest, num_txns=len(first))

        # Simulate a restart: a new client built purely from the log.
        restored = DigestLog.from_json(log.to_json())
        resumed = LitmusClient(group, restored.latest_digest, config=config)
        second = [increment(i, 1) for i in range(4, 7)]
        verdict2 = resumed.verify_response(second, server.execute_batch(second))
        assert verdict2.accepted
