"""Tests for the LitmusSession facade and the typed BatchResult."""

from __future__ import annotations

import pytest

from repro.core import (
    BatchResult,
    LitmusClient,
    LitmusConfig,
    LitmusServer,
    LitmusSession,
    RetryPolicy,
    UserTicket,
)
from repro.errors import BatchRejectedError, ReproError, TicketUnresolvedError
from repro.obs import MetricsRegistry, Tracer

from ..db.helpers import INCREMENT, READ_ONLY, TRANSFER

PRIME_BITS = 64


def _config(**overrides) -> LitmusConfig:
    defaults = dict(cc="dr", processing_batch_size=8, prime_bits=PRIME_BITS)
    defaults.update(overrides)
    return LitmusConfig(**defaults)


@pytest.fixture()
def session(group) -> LitmusSession:
    return LitmusSession.create(
        initial={("acct", i): 100 for i in range(4)},
        config=_config(),
        group=group,
        max_batch=16,
        tracer=Tracer(),
        registry=MetricsRegistry(),
    )


class TestSubmitFlush:
    def test_tickets_resolve_after_flush(self, session):
        a = session.submit("alice", TRANSFER, src=0, dst=1, amount=10)
        b = session.submit("bob", READ_ONLY, k=1)
        assert isinstance(a, UserTicket)
        assert not a.resolved and session.queued == 2
        result = session.flush()
        assert result.accepted and isinstance(result, BatchResult)
        assert a.resolved and b.resolved and a.accepted and b.accepted
        assert a.outputs == (200,)

    def test_result_outputs_and_user_outputs(self, session):
        session.submit("alice", INCREMENT, k=1)
        session.submit("alice", INCREMENT, k=1)
        session.submit("bob", READ_ONLY, k=1)
        result = session.flush()
        assert result.num_txns == 3
        assert set(result.outputs) == {1, 2, 3}
        # alice's two increments, in submission order: read 0 then 1.
        assert result.user_outputs["alice"] == ((0,), (1,))
        assert result.user_outputs["bob"] == ((2,),)
        assert len(result.tickets) == 3

    def test_result_mappings_are_read_only(self, session):
        session.submit("alice", INCREMENT, k=1)
        result = session.flush()
        with pytest.raises(TypeError):
            result.outputs[99] = ()
        with pytest.raises(TypeError):
            result.user_outputs["mallory"] = ()

    def test_result_carries_timing_and_metrics(self, group):
        # Uses the process-default registry: the db/crypto layers bound
        # their counters to it at import, so only its snapshots carry them.
        session = LitmusSession.create(
            initial={}, config=_config(), group=group, tracer=Tracer()
        )
        session.submit("alice", INCREMENT, k=1)
        result = session.flush()
        assert result.timing is not None
        assert result.timing.num_txns == 1
        breakdown = result.timing.breakdown()
        assert list(breakdown) == [
            "process_traces",
            "circuit_generation",
            "key_generation",
            "proving",
            "verification",
            "proof_output",
        ]
        assert sum(breakdown.values()) == pytest.approx(1.0)
        assert result.metrics["db.committed"]["value"] >= 1
        assert result.metrics["server.batches"]["value"] >= 1

    def test_auto_flush_at_capacity(self, group):
        session = LitmusSession.create(
            initial={},
            config=_config(processing_batch_size=4),
            group=group,
            max_batch=3,
            tracer=Tracer(),
            registry=MetricsRegistry(),
        )
        tickets = [session.submit(f"user{i}", INCREMENT, k=i) for i in range(3)]
        assert session.queued == 0
        assert all(t.resolved and t.accepted for t in tickets)
        assert session.batches_verified == 1

    def test_multiple_rounds_share_digest_chain(self, session):
        for _ in range(3):
            session.submit("alice", INCREMENT, k=7)
            assert session.flush()
        assert session.batches_verified == 3
        assert session.server.db.get(("row", 7)) == 3
        assert session.digest == session.server.digest

    def test_rejects_nonpositive_capacity(self, session):
        with pytest.raises(ReproError):
            LitmusSession(session.server, session.client, max_batch=0)


class TestEmptyFlush:
    def test_empty_flush_is_documented_noop(self, session):
        """Regression: empty flush returns BatchResult.empty(), no round."""
        digest_before = session.digest
        result = session.flush()
        assert result.accepted and bool(result)
        assert result.num_txns == 0
        assert result.timing is None
        assert result.outputs == {} and result.tickets == ()
        assert session.batches_verified == 0
        assert session.digest == digest_before
        # No server round happened: no batch counter movement either.
        assert "server.batches" not in result.metrics or (
            result.metrics["server.batches"]["value"] == 0
        )


class TestTicketErrors:
    def test_unresolved_ticket_raises_typed_error(self, session):
        ticket = session.submit("alice", INCREMENT, k=3)
        with pytest.raises(TicketUnresolvedError):
            _ = ticket.accepted
        with pytest.raises(TicketUnresolvedError):
            _ = ticket.outputs
        # ...and the typed error still is a ReproError (old handlers work).
        with pytest.raises(ReproError):
            _ = ticket.accepted
        session.flush()
        assert ticket.accepted and ticket.reason == ""

    def test_rejected_batch_raises_on_outputs(self, session, monkeypatch):
        ticket = session.submit("alice", INCREMENT, k=3)
        real_verify = session.client.verify_response

        def tampered(txns, response):
            verdict = real_verify(txns, response)
            return type(verdict)(accepted=False, reason="injected failure")

        monkeypatch.setattr(session.client, "verify_response", tampered)
        result = session.flush()
        assert not result and result.reason == "injected failure"
        assert ticket.resolved and not ticket.accepted
        assert ticket.reason == "injected failure"
        with pytest.raises(BatchRejectedError, match="injected failure"):
            _ = ticket.outputs
        assert session.batches_rejected == 1


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ReproError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ReproError):
            RetryPolicy(backoff=-1.0)

    def test_exponential_delay(self):
        policy = RetryPolicy(max_attempts=4, backoff=0.5)
        assert [policy.delay(n) for n in (1, 2, 3)] == [0.5, 1.0, 2.0]
        assert RetryPolicy().delay(5) == 0.0

    def test_happy_path_is_one_attempt(self, session):
        session.submit("alice", INCREMENT, k=1)
        assert session.flush().attempts == 1

    def test_transient_rejection_is_retried(self, group, monkeypatch):
        session = LitmusSession.create(
            initial={("acct", 0): 100},
            config=_config(),
            group=group,
            registry=MetricsRegistry(),
            retry_policy=RetryPolicy(max_attempts=3, backoff=0.0),
        )
        from repro.core.client import ClientVerdict

        real_verify = session.client.verify_response
        failures = iter([True])  # reject once, then behave

        def flaky(txns, response):
            # A true rejection never advances the client digest, so the
            # failing attempt must not run the real (accepting) verifier.
            if next(failures, False):
                return ClientVerdict(accepted=False, reason="transient")
            return real_verify(txns, response)

        monkeypatch.setattr(session.client, "verify_response", flaky)
        ticket = session.submit("alice", INCREMENT, k=0)
        result = session.flush()
        assert result.accepted
        assert result.attempts == 2
        assert session.retries == 1
        assert session.resyncs == 1
        assert ticket.accepted

    def test_backoff_sleeps_between_attempts(self, group, monkeypatch):
        import repro.core.session as session_module

        sleeps: list[float] = []
        session = LitmusSession.create(
            initial={("acct", 0): 100},
            config=_config(),
            group=group,
            registry=MetricsRegistry(),
            retry_policy=RetryPolicy(
                max_attempts=3, backoff=0.25, sleep=sleeps.append
            ),
        )
        monkeypatch.setattr(
            session.client,
            "verify_response",
            lambda txns, response: session_module.ClientVerdict(
                accepted=False, reason="always"
            ),
        )
        session.submit("alice", INCREMENT, k=0)
        result = session.flush()
        assert not result.accepted and result.attempts == 3
        assert sleeps == [0.25, 0.5]


class TestLastResult:
    def test_explicit_flush_records_last_result(self, session):
        session.submit("alice", INCREMENT, k=1)
        result = session.flush()
        assert session.last_result is result

    def test_auto_flush_result_is_recorded(self, group):
        session = LitmusSession.create(
            initial={("row", 1): 0},
            config=_config(),
            group=group,
            max_batch=2,
            registry=MetricsRegistry(),
        )
        session.submit("alice", INCREMENT, k=1)
        assert session.last_result is None  # below capacity: nothing flushed
        session.submit("bob", INCREMENT, k=1)
        assert session.last_result is not None
        assert session.last_result.accepted
        assert session.last_result.num_txns == 2

    def test_rejected_auto_flush_is_not_silently_discarded(
        self, group, monkeypatch
    ):
        """Regression: submit()'s auto-flush used to drop its BatchResult,
        making a rejected batch invisible to callers who never saw the
        flush happen."""
        session = LitmusSession.create(
            initial={("row", 1): 0},
            config=_config(),
            group=group,
            max_batch=1,
            registry=MetricsRegistry(),
        )
        from repro.core.client import ClientVerdict

        monkeypatch.setattr(
            session.client,
            "verify_response",
            lambda txns, response: ClientVerdict(
                accepted=False, reason="auto-flush rejection"
            ),
        )
        ticket = session.submit("alice", INCREMENT, k=1)
        assert session.last_result is not None
        assert not session.last_result.accepted
        assert session.last_result.reason == "auto-flush rejection"
        assert ticket.resolved and not ticket.accepted
        assert session.batches_rejected == 1
