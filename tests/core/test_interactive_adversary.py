"""Adversarial tests for the interactive baseline's verification path."""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.interactive import InteractiveServerClient
from repro.core.memory_integrity import MemoryIntegrityChecker
from repro.errors import VerificationFailure

from ..db.helpers import increment, read_only

PRIME_BITS = 64
INITIAL = {("row", 0): 5, ("row", 1): 7}


class TestInteractiveAdversary:
    def test_client_checker_rejects_tampered_read(self, group):
        system = InteractiveServerClient(group, initial=INITIAL, prime_bits=PRIME_BITS)
        checker = MemoryIntegrityChecker(group, system.digest, PRIME_BITS)
        cert = system.provider.certify_reads({("row", 0): 5})
        forged = dataclasses.replace(cert, present=((("row", 0), 50),))
        assert not checker.mem_check(forged)

    def test_server_side_corruption_surfaces(self, group):
        """If the server's AD state is rebuilt from corrupted data, the
        client's digest no longer matches and every check fails."""
        honest = InteractiveServerClient(group, initial=INITIAL, prime_bits=PRIME_BITS)
        corrupt = InteractiveServerClient(
            group, initial={("row", 0): 999, ("row", 1): 7}, prime_bits=PRIME_BITS
        )
        # A checker anchored to the honest digest rejects the corrupt server.
        checker = MemoryIntegrityChecker(group, honest.digest, PRIME_BITS)
        cert = corrupt.provider.certify_reads({("row", 0): 999})
        assert not checker.mem_check(cert)

    def test_session_advances_only_with_valid_proofs(self, group):
        system = InteractiveServerClient(group, initial=INITIAL, prime_bits=PRIME_BITS)
        report = system.run([increment(1, 0), read_only(2, 0)])
        assert all(result.committed for result in report.results)
        assert report.results[0].outputs == (5,)  # increment emits the old value
        assert report.results[1].outputs == (6,)  # the reader sees the new one

    def test_desynced_client_halts_session(self, group):
        system = InteractiveServerClient(group, initial=INITIAL, prime_bits=PRIME_BITS)
        # Desynchronize the client's digest (models a lost update).
        system.checker.acc = system.checker.acc ^ 1
        with pytest.raises(VerificationFailure):
            system.run([read_only(1, 0)])
