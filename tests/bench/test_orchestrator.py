"""End-to-end orchestrator tests over a synthetic trial matrix.

``run_areas`` must write the legacy text report and the JSON trajectory
record from the same in-memory rows — the agreement test re-renders the
decoded JSON record and demands byte equality with the ``.txt`` artifact.
"""

from __future__ import annotations

import json

from repro.bench.experiment import (
    TrialMatrix,
    TrialMeasurement,
    TrialSpec,
    render_trial_report,
    run_areas,
)
from repro.bench.experiment.trajectory import load_trajectory, validate_trajectory


def _runner(config, seed):
    return TrialMeasurement(
        rows=(
            {"case": "a", "value": 1.25, "n": seed},
            {"case": "b", "value": 2.5, "n": seed + 1},
        ),
        counts={"txns": 4, "batches": 2},
        metrics={"throughput": 123.456, "latency": 0.25},
    )


def _matrix():
    return TrialMatrix(
        (
            TrialSpec(
                name="unit/alpha",
                area="unit",
                bench_file="bench_unit.py",
                runner=_runner,
                config={"x": 1},
                headline=("throughput",),
            ),
            TrialSpec(
                name="unit/beta",
                area="unit",
                bench_file="bench_unit.py",
                runner=_runner,
                seed=3,
            ),
        )
    )


def test_run_areas_writes_trajectory_and_reports(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_GIT_SHA", "f" * 40)
    results = tmp_path / "results"
    recorded = run_areas(
        ["unit"], matrix=_matrix(), root=tmp_path, results=results
    )
    assert sorted(r["trial"] for r in recorded["unit"]) == ["unit/alpha", "unit/beta"]

    doc = load_trajectory(tmp_path / "BENCH_unit.json")
    validate_trajectory(doc)
    (entry,) = doc["entries"]
    assert entry["git_sha"] == "f" * 40 and entry["blessed"] is False
    assert set(entry["trials"]) == {"unit/alpha", "unit/beta"}


def test_txt_report_agrees_with_json_record(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_GIT_SHA", "f" * 40)
    results = tmp_path / "results"
    run_areas(["unit"], matrix=_matrix(), root=tmp_path, results=results)

    # Re-render purely from what was persisted to disk: the text artifact
    # must be reproducible from the JSON record alone.
    doc = json.loads((tmp_path / "BENCH_unit.json").read_text(encoding="utf-8"))
    for name, record in doc["entries"][0]["trials"].items():
        txt = (results / ("orchestrated_" + name.replace("/", "_") + ".txt")).read_text(
            encoding="utf-8"
        )
        assert txt == render_trial_report(record)
        assert "[headline]" in txt or not record["headline"]


def test_runs_append_and_never_rewrite(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_GIT_SHA", "a" * 40)
    results = tmp_path / "results"
    run_areas(["unit"], matrix=_matrix(), root=tmp_path, results=results)
    first = load_trajectory(tmp_path / "BENCH_unit.json")

    monkeypatch.setenv("REPRO_BENCH_GIT_SHA", "b" * 40)
    run_areas(["unit"], matrix=_matrix(), root=tmp_path, results=results, bless=True)
    second = load_trajectory(tmp_path / "BENCH_unit.json")

    assert len(second["entries"]) == 2
    # Append-only: the first entry is byte-identical after the second run.
    assert second["entries"][0] == first["entries"][0]
    assert second["entries"][1]["blessed"] is True
    assert second["entries"][1]["git_sha"] == "b" * 40
    # Identity hashes are stable across runs of the same specs.
    for name in ("unit/alpha", "unit/beta"):
        assert (
            second["entries"][0]["trials"][name]["record_hash"]
            == second["entries"][1]["trials"][name]["record_hash"]
        )


def test_echo_narrates_progress(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_GIT_SHA", "c" * 40)
    lines = []
    run_areas(
        ["unit"],
        matrix=_matrix(),
        root=tmp_path,
        results=tmp_path / "results",
        echo=lines.append,
    )
    joined = "\n".join(lines)
    assert "unit/alpha" in joined and "BENCH_unit.json" in joined
