"""Tests for benchmark report formatting."""

from __future__ import annotations

from repro.bench.report import format_number, format_series, format_table


class TestFormatNumber:
    def test_large_numbers_grouped(self):
        assert format_number(17638.2) == "17,638"

    def test_small_floats(self):
        assert format_number(0.51) == "0.51"
        assert format_number(3.14159) == "3.1"

    def test_bools_and_ints(self):
        assert format_number(True) == "yes"
        assert format_number(False) == "no"
        assert format_number(42) == "42"

    def test_zero(self):
        assert format_number(0.0) == "0"


class TestFormatTable:
    def test_empty(self):
        assert format_table([]) == "(no data)"

    def test_alignment_and_headers(self):
        rows = [{"name": "a", "value": 1}, {"name": "bb", "value": 22}]
        rendered = format_table(rows)
        lines = rendered.splitlines()
        assert lines[0].split() == ["name", "value"]
        assert len(lines) == 4  # header, separator, 2 rows

    def test_column_selection(self):
        rows = [{"a": 1, "b": 2, "c": 3}]
        rendered = format_table(rows, columns=["c", "a"])
        assert "b" not in rendered.splitlines()[0]


class TestFormatSeries:
    def test_pivot(self):
        rows = [
            {"x": 1, "baseline": "A", "y": 10},
            {"x": 1, "baseline": "B", "y": 20},
            {"x": 2, "baseline": "A", "y": 30},
            {"x": 2, "baseline": "B", "y": 40},
        ]
        rendered = format_series(rows, x="x", y="y")
        lines = rendered.splitlines()
        assert "A" in lines[0] and "B" in lines[0]
        assert len(lines) == 4

    def test_missing_cells_blank(self):
        rows = [
            {"x": 1, "baseline": "A", "y": 10},
            {"x": 2, "baseline": "B", "y": 40},
        ]
        rendered = format_series(rows, x="x", y="y")
        assert "(no data)" not in rendered
