"""Property tests of the trial-record schema and trajectory loader.

Hypothesis drives arbitrary (valid and corrupted) payloads through the
encode/decode/validate path; every failure mode must surface as a typed
:class:`~repro.errors.BenchSchemaError` /
:class:`~repro.errors.SchemaVersionError` /
:class:`~repro.errors.TrajectoryError` — never a raw ``KeyError`` or
``json.JSONDecodeError``.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.experiment.schema import (
    HASH_FIELDS,
    SCHEMA_VERSION,
    TIMING_FIELDS,
    decode_record,
    encode_record,
    finalize_record,
    record_hash,
    validate_record,
)
from repro.bench.experiment.trajectory import load_trajectory, validate_trajectory
from repro.errors import BenchSchemaError, SchemaVersionError, TrajectoryError

_slugs = st.text(alphabet="abcdefgh_", min_size=1, max_size=8)
_config_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(-(10**6), 10**6),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=8),
)
_config = st.dictionaries(
    _slugs, st.one_of(_config_scalars, st.lists(_config_scalars, max_size=3)), max_size=4
)
_counts = st.dictionaries(_slugs, st.integers(0, 10**9), min_size=1, max_size=4)
_metrics = st.dictionaries(
    _slugs,
    st.floats(min_value=0.0, max_value=1e9, allow_nan=False),
    min_size=1,
    max_size=4,
)


@st.composite
def records(draw):
    metrics = draw(_metrics)
    headline = draw(
        st.lists(st.sampled_from(sorted(metrics)), unique=True, max_size=2)
    )
    area = draw(st.sampled_from(["pipeline", "wal", "crypto", "figures"]))
    return finalize_record(
        {
            "schema_version": SCHEMA_VERSION,
            "trial": f"{area}/{draw(_slugs)}",
            "area": area,
            "bench_file": f"bench_{draw(_slugs)}.py",
            "seed": draw(st.integers(0, 2**31)),
            "config": draw(_config),
            "warmup": draw(st.integers(0, 3)),
            "repeats": draw(st.integers(1, 5)),
            "headline": headline,
            "counts": draw(_counts),
            "metrics": metrics,
            "rows": [{"k": 1.5, "label": "x"}],
            "env": {"python": "3.12", "host": "unit"},
            "started_at": "2026-08-08T00:00:00Z",
            "elapsed_seconds": draw(st.floats(min_value=0, max_value=1e4)),
        }
    )


@settings(max_examples=60, deadline=None)
@given(records())
def test_encode_decode_round_trip(record):
    assert decode_record(encode_record(record)) == record


@settings(max_examples=40, deadline=None)
@given(records(), _slugs)
def test_unknown_field_rejected(record, name):
    tampered = dict(record)
    tampered[f"zz_{name}"] = 1
    with pytest.raises(BenchSchemaError):
        validate_record(tampered)


@settings(max_examples=40, deadline=None)
@given(records(), st.integers(2, 99))
def test_schema_version_bump_detected(record, bump):
    future = dict(record)
    future["schema_version"] = SCHEMA_VERSION + bump
    with pytest.raises(SchemaVersionError) as excinfo:
        validate_record(future)
    assert excinfo.value.found == SCHEMA_VERSION + bump
    assert excinfo.value.expected == SCHEMA_VERSION


@settings(max_examples=40, deadline=None)
@given(records())
def test_identity_tamper_invalidates_hash(record):
    tampered = dict(record)
    tampered["counts"] = dict(tampered["counts"])
    key = sorted(tampered["counts"])[0]
    tampered["counts"][key] = tampered["counts"][key] + 1
    with pytest.raises(BenchSchemaError, match="record_hash"):
        validate_record(tampered)


@settings(max_examples=40, deadline=None)
@given(records(), st.floats(min_value=0, max_value=1e6, allow_nan=False))
def test_timing_fields_do_not_affect_hash(record, elapsed):
    retimed = dict(record)
    retimed["elapsed_seconds"] = elapsed
    retimed["env"] = {"python": "9.9", "host": "elsewhere"}
    retimed["metrics"] = {k: v * 2 + 1 for k, v in record["metrics"].items()}
    retimed["started_at"] = "1999-01-01T00:00:00Z"
    assert record_hash(retimed) == record["record_hash"]
    assert set(TIMING_FIELDS).isdisjoint(HASH_FIELDS)


@settings(max_examples=40, deadline=None)
@given(st.text(max_size=200))
def test_corrupted_trajectory_errors_are_typed(tmp_path_factory, text):
    path = tmp_path_factory.mktemp("traj") / "BENCH_unit.json"
    path.write_text(text, encoding="utf-8")
    try:
        load_trajectory(path)
    except (TrajectoryError, SchemaVersionError):
        pass  # the only acceptable failure modes
    # json.JSONDecodeError / KeyError / TypeError must never escape.


def test_missing_trajectory_file_is_typed(tmp_path):
    with pytest.raises(TrajectoryError):
        load_trajectory(tmp_path / "BENCH_void.json")


@settings(max_examples=30, deadline=None)
@given(records())
def test_trajectory_record_cross_checks(record):
    doc = {
        "schema_version": SCHEMA_VERSION,
        "area": record["area"],
        "entries": [
            {
                "git_sha": "cafe",
                "recorded_at": "2026-08-08T00:00:00Z",
                "blessed": False,
                "trials": {record["trial"]: record},
            }
        ],
    }
    validate_trajectory(doc)
    mislabeled = json.loads(json.dumps(doc))
    mislabeled["entries"][0]["trials"] = {"wrong/name": record}
    with pytest.raises(TrajectoryError):
        validate_trajectory(mislabeled)
