"""Tests for the benchmark model and workload profiling."""

from __future__ import annotations

import pytest

from repro.bench.model import LitmusModel, WorkloadProfile
from repro.sim.costmodel import CostModel
from repro.sim.network import LAN, WAN
from repro.workloads.ycsb import YCSBWorkload


@pytest.fixture(scope="module")
def profile() -> WorkloadProfile:
    workload = YCSBWorkload(num_rows=1024, theta=0.6, seed=21)
    txns = workload.generate(400)
    return WorkloadProfile.measure(
        "test-ycsb", txns, workload.initial_data(), cc="dr", processing_batch_size=64
    )


@pytest.fixture(scope="module")
def model(profile) -> LitmusModel:
    return LitmusModel(profile)


class TestProfile:
    def test_measured_quantities_sane(self, profile):
        assert profile.logic_constraints_per_txn > 1
        assert 1.5 < profile.accesses_per_txn <= 2.0
        assert 0 < profile.commit_fraction <= 1.0
        assert profile.contention_factor >= 1.0
        assert profile.units_per_txn > 0

    def test_contention_rises_with_theta(self):
        def factor(theta):
            workload = YCSBWorkload(num_rows=1024, theta=theta, seed=21)
            txns = workload.generate(400)
            return WorkloadProfile.measure(
                f"t{theta}", txns, workload.initial_data(), "dr", 64
            ).contention_factor

        assert factor(1.2) > factor(0.2)


class TestLitmusModel:
    def test_throughput_rises_with_batch(self, model):
        small = model.litmus_run(1_000, num_provers=4)
        large = model.litmus_run(100_000, num_provers=4)
        assert large.throughput > small.throughput

    def test_more_provers_more_throughput(self, model):
        one = model.litmus_run(500_000, num_provers=1)
        many = model.litmus_run(500_000, num_provers=64)
        assert many.throughput > 2 * one.throughput

    def test_2pl_single_piece(self, model):
        run = model.litmus_run(10_000, num_provers=1, cc="2pl")
        assert run.num_pieces == 1

    def test_2pl_slower_than_dr(self, model):
        dr = model.litmus_run(100_000, num_provers=1, cc="dr")
        tpl = model.litmus_run(100_000, num_provers=1, cc="2pl")
        assert dr.throughput > 3 * tpl.throughput

    def test_table_doublings_slow_the_run(self, model):
        base = model.litmus_run(500_000, num_provers=64, table_doublings=0)
        big = model.litmus_run(500_000, num_provers=64, table_doublings=3)
        assert big.throughput < base.throughput

    def test_latency_includes_verification(self, model):
        run = model.litmus_run(10_000, num_provers=4)
        assert run.mean_latency_seconds > model.cost_model.verify_seconds

    def test_proof_bytes_scale_with_provers(self, model):
        few = model.litmus_run(500_000, num_provers=2)
        many = model.litmus_run(500_000, num_provers=75)
        assert few.proof_bytes == 2 * model.cost_model.proof_bytes_per_prover
        assert many.proof_bytes > few.proof_bytes


class TestBaselineModels:
    def test_interactive_decays_quadratically(self, model):
        small = model.interactive_run(1_000, LAN)
        large = model.interactive_run(100_000, LAN)
        assert large.throughput < small.throughput

    def test_wan_slower_than_lan(self, model):
        lan = model.interactive_run(10_000, LAN)
        wan = model.interactive_run(10_000, WAN)
        assert wan.throughput < lan.throughput

    def test_cache_bonus_helps(self, model):
        plain = model.interactive_run(50_000, LAN, cache_bonus=0.0)
        cached = model.interactive_run(50_000, LAN, cache_bonus=0.4)
        assert cached.throughput > plain.throughput

    def test_merkle_flat_throughput(self, model):
        a = model.merkle_run(1_000, LAN)
        b = model.merkle_run(100_000, LAN)
        assert a.throughput == pytest.approx(b.throughput)
        assert a.throughput < 25

    def test_no_verification_dominates_litmus(self, model):
        litmus = model.litmus_run(100_000, num_provers=75)
        free = model.no_verification_run(100_000, "dr")
        assert free.throughput > 10 * litmus.throughput


class TestContentionTransport:
    def test_scale_small_at_low_theta(self):
        from repro.bench.model import zipf_contention_scale

        # A 4k-row table is far hotter than 10M rows at theta = 0.6 ...
        assert zipf_contention_scale(0.6, 4096) < 0.1
        # ... but nearly as hot once the distribution concentrates.
        assert zipf_contention_scale(1.4, 4096) > 0.5

    def test_uniform_scale_is_row_ratio(self):
        from repro.bench.model import zipf_contention_scale

        assert zipf_contention_scale(0.0, 4096) == pytest.approx(4096 / 10_000_000)

    def test_top_mass_monotone_in_top(self):
        from repro.bench.model import zipf_top_mass

        assert zipf_top_mass(10_000, 0.8, top=64) > zipf_top_mass(10_000, 0.8, top=1)

    def test_extra_units_drive_gadget_growth(self, profile):
        model = LitmusModel(profile)
        calm = model.litmus_run(100_000, num_provers=8, contention_scale=0.0)
        hot = model.litmus_run(100_000, num_provers=8, contention_scale=1.0)
        assert hot.total_constraints >= calm.total_constraints
        assert hot.throughput <= calm.throughput


class TestCalibrationAnchors:
    def test_dr_anchor(self, model):
        run = model.litmus_run(
            81_920, num_provers=1, cc="dr", processing_batch_size=81_920,
            contention_factor=1.0, commit_fraction=1.0,
        )
        # Single prover at the paper's configuration: ~714 txn/s.
        assert run.throughput == pytest.approx(714.2, rel=0.10)

    def test_drm_anchor(self, model):
        run = model.litmus_run(
            2_621_440, num_provers=75, cc="dr", processing_batch_size=81_920,
            contention_factor=1.0, commit_fraction=1.0,
        )
        assert run.throughput == pytest.approx(17_638, rel=0.35)
