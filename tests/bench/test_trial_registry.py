"""Registry completeness: every bench_*.py must register a TrialSpec.

The orchestrator only runs what is registered — a benchmark file without a
spec silently drops out of the BENCH_*.json trajectories and the perf
gate.  This test fails with the orphan's file name so the omission is
caught the moment the file lands.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.bench.experiment import TrialSpec, bench_dir, discover, register
from repro.errors import TrialSpecError

REQUIRED_AREAS = {"crypto", "pipeline", "wal", "network"}


@pytest.fixture(scope="module")
def matrix():
    return discover()


def test_every_bench_file_registers_a_trial(matrix):
    present = {path.name for path in bench_dir().glob("bench_*.py")}
    registered = set(matrix.bench_files())
    orphans = sorted(present - registered)
    assert not orphans, (
        "bench files without a registered TrialSpec (add a register(TrialSpec(...)) "
        f"block): {', '.join(orphans)}"
    )


def test_registered_files_exist(matrix):
    present = {path.name for path in bench_dir().glob("bench_*.py")}
    ghosts = sorted(set(matrix.bench_files()) - present)
    assert not ghosts, f"specs registered for missing bench files: {', '.join(ghosts)}"


def test_required_areas_present(matrix):
    missing = REQUIRED_AREAS - set(matrix.areas())
    assert not missing, f"trial matrix lost required area(s): {', '.join(sorted(missing))}"


def test_trial_names_unique_and_well_formed(matrix):
    names = [spec.name for spec in matrix.specs]
    assert len(names) == len(set(names))
    for spec in matrix.specs:
        area, _, slug = spec.name.partition("/")
        assert area == spec.area and slug


def test_rediscovery_is_idempotent(matrix):
    again = discover()
    assert {spec.name for spec in again.specs} == {spec.name for spec in matrix.specs}


def test_conflicting_reregistration_rejected(matrix):
    spec = matrix.specs[0]
    conflicting = dataclasses.replace(spec, seed=spec.seed + 1)
    with pytest.raises(TrialSpecError):
        register(conflicting)
    # Identical identity is a refresh, not an error.
    register(spec)


def test_spec_validation_rejects_bad_shapes():
    def runner(config, seed):  # pragma: no cover - never called
        raise AssertionError

    with pytest.raises(TrialSpecError):
        TrialSpec(name="no_slash", area="x", bench_file="bench_x.py", runner=runner)
    with pytest.raises(TrialSpecError):
        TrialSpec(
            name="wal/ok", area="crypto", bench_file="bench_x.py", runner=runner
        )
    with pytest.raises(TrialSpecError):
        TrialSpec(
            name="wal/ok", area="wal", bench_file="not_a_bench.py", runner=runner
        )
    with pytest.raises(TrialSpecError):
        TrialSpec(
            name="wal/ok",
            area="wal",
            bench_file="bench_x.py",
            runner=runner,
            repeats=0,
        )
