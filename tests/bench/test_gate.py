"""Gate unit tests against synthetic trajectories.

Each scenario builds a real on-disk ``BENCH_unit.json`` with controlled
metric movements and asserts the gate's verdict and exit code: a 20%
throughput drop fails, an improvement and a noise-band wiggle pass, a
single-entry trajectory passes by default, and a blessed entry pins the
baseline.
"""

from __future__ import annotations

import pytest

from repro.bench import gate
from repro.bench.experiment.schema import SCHEMA_VERSION, finalize_record
from repro.bench.experiment.trajectory import append_entry, load_trajectory
from repro.errors import TrajectoryError

AREA = "unit"


def make_record(metrics, headline=("throughput",), trial=f"{AREA}/t1"):
    return finalize_record(
        {
            "schema_version": SCHEMA_VERSION,
            "trial": trial,
            "area": AREA,
            "bench_file": "bench_unit.py",
            "seed": 7,
            "config": {},
            "warmup": 0,
            "repeats": 1,
            "headline": list(headline),
            "counts": {"txns": 10},
            "metrics": dict(metrics),
            "rows": [],
            "env": {"host": "unit"},
            "started_at": "2026-08-08T00:00:00Z",
            "elapsed_seconds": 0.1,
        }
    )


def record_entries(tmp_path, *metric_sets, blessed=None, headline=("throughput",)):
    for index, metrics in enumerate(metric_sets):
        append_entry(
            AREA,
            [make_record(metrics, headline=headline)],
            git_sha=f"sha{index:07d}00000",
            recorded_at=f"2026-08-0{index + 1}T00:00:00Z",
            blessed=bool(blessed and index in blessed),
            root=tmp_path,
        )


def run_gate(tmp_path):
    return gate.gate_areas([AREA], root=tmp_path)


def test_throughput_regression_fails(tmp_path):
    record_entries(tmp_path, {"throughput": 100.0}, {"throughput": 80.0})
    report = run_gate(tmp_path)
    assert report.failed
    (check,) = report.regressions
    assert check.metric == "throughput" and check.change == pytest.approx(-0.20)
    text = gate.format_report(report)
    assert "GATE FAILED" in text and "--bless" in text


def test_gate_main_exit_codes(tmp_path, capsys):
    record_entries(tmp_path, {"throughput": 100.0}, {"throughput": 80.0})
    assert gate.main(["--root", str(tmp_path), "--mode", "enforce"]) == 1
    assert gate.main(["--root", str(tmp_path), "--mode", "report"]) == 0
    assert "GATE FAILED" in capsys.readouterr().out


def test_improvement_passes(tmp_path):
    record_entries(tmp_path, {"throughput": 100.0}, {"throughput": 140.0})
    report = run_gate(tmp_path)
    assert not report.failed
    (check,) = report.checks
    assert check.status == "improvement"


def test_noise_band_passes(tmp_path):
    record_entries(tmp_path, {"throughput": 100.0}, {"throughput": 91.0})
    report = run_gate(tmp_path)
    assert not report.failed and report.checks[0].status == "ok"


def test_latency_rise_fails(tmp_path):
    record_entries(
        tmp_path,
        {"latency_p95": 1.0},
        {"latency_p95": 1.25},
        headline=("latency_p95",),
    )
    report = run_gate(tmp_path)
    assert report.failed
    assert report.regressions[0].direction == "lower"


def test_latency_within_band_passes(tmp_path):
    record_entries(
        tmp_path, {"latency_p95": 1.0}, {"latency_p95": 1.1}, headline=("latency_p95",)
    )
    assert not run_gate(tmp_path).failed


def test_missing_baseline_passes(tmp_path):
    record_entries(tmp_path, {"throughput": 100.0})
    report = run_gate(tmp_path)
    assert not report.failed and not report.checks
    assert any("no baseline" in note for note in report.notes)


def test_blessed_entry_pins_the_baseline(tmp_path):
    # vs the immediate predecessor (100.0) the newest entry (-22%) fails;
    # vs the blessed entry (80.0) it is within the band.
    record_entries(
        tmp_path,
        {"throughput": 80.0},
        {"throughput": 100.0},
        {"throughput": 78.0},
        blessed={0},
    )
    report = run_gate(tmp_path)
    assert not report.failed
    assert any("blessed baseline" in note for note in report.notes)


def test_unblessed_history_uses_immediate_predecessor(tmp_path):
    record_entries(
        tmp_path, {"throughput": 80.0}, {"throughput": 100.0}, {"throughput": 78.0}
    )
    assert run_gate(tmp_path).failed


def test_custom_thresholds(tmp_path):
    record_entries(tmp_path, {"throughput": 100.0}, {"throughput": 89.0})
    tight = gate.GateThresholds(throughput_drop=0.05)
    assert gate.gate_areas([AREA], root=tmp_path, thresholds=tight).failed


def test_no_trajectories_is_typed(tmp_path):
    with pytest.raises(TrajectoryError, match="--bench"):
        gate.gate_areas(root=tmp_path)


def test_new_trial_is_noted_not_gated(tmp_path):
    record_entries(tmp_path, {"throughput": 100.0})
    append_entry(
        AREA,
        [
            make_record({"throughput": 10.0}),
            make_record({"throughput": 5.0}, trial=f"{AREA}/t2"),
        ],
        git_sha="shaAAAAA00000",
        recorded_at="2026-08-08T00:00:00Z",
        root=tmp_path,
    )
    report = run_gate(tmp_path)
    # t1 regressed hugely; t2 is new and only noted.
    assert report.failed
    assert all(check.trial == f"{AREA}/t1" for check in report.checks)
    assert any("new" in note and "t2" in note for note in report.notes)
    doc = load_trajectory(tmp_path / f"BENCH_{AREA}.json")
    assert len(doc["entries"]) == 2
