"""Determinism contract of the orchestrated runner.

Two runs of the same seeded spec must produce identical deterministic
counters (txns / batches / conflicts) and identical ``record_hash``
values — the hash covers exactly the identity fields, so host-dependent
timing cannot perturb it.  A runner whose counts drift across repeats is
reported as :class:`~repro.errors.TrialNondeterminism`, and a hung runner
as :class:`~repro.errors.TrialTimeout`.
"""

from __future__ import annotations

import dataclasses
import time

import pytest

from repro.bench.experiment import TrialMeasurement, TrialSpec, discover, run_trial
from repro.errors import TrialExecutionError, TrialNondeterminism, TrialTimeout


@pytest.fixture(scope="module")
def fig9_spec():
    spec = discover().get("figures/fig9_table_size")
    # Shrink the registered config so the double run stays fast.
    return dataclasses.replace(
        spec, config={"doublings": [0, 1], "num_txns": 20_480, "scale": 120}
    )


def test_same_seed_same_counts_and_hash(fig9_spec):
    first = run_trial(fig9_spec)
    second = run_trial(fig9_spec)
    assert first["counts"] == second["counts"]
    assert first["record_hash"] == second["record_hash"]
    # The modeled figure metrics are analytic over seeded executions, so
    # they are bit-identical too — only env/timestamps may differ.
    assert first["metrics"] == second["metrics"]
    assert first["counts"]["txns"] > 0 and first["counts"]["batches"] > 0


def test_nondeterministic_counts_are_reported():
    calls = {"n": 0}

    def flaky(config, seed):
        calls["n"] += 1
        return TrialMeasurement(
            rows=(), counts={"txns": calls["n"]}, metrics={"throughput": 1.0}
        )

    spec = TrialSpec(
        name="unit/flaky",
        area="unit",
        bench_file="bench_unit.py",
        runner=flaky,
        repeats=2,
    )
    with pytest.raises(TrialNondeterminism, match="seed"):
        run_trial(spec)


def test_hung_runner_times_out():
    def hang(config, seed):
        time.sleep(30)
        return TrialMeasurement(rows=(), counts={"x": 1}, metrics={})

    spec = TrialSpec(
        name="unit/hang",
        area="unit",
        bench_file="bench_unit.py",
        runner=hang,
        timeout_seconds=0.2,
    )
    start = time.perf_counter()
    with pytest.raises(TrialTimeout):
        run_trial(spec)
    assert time.perf_counter() - start < 5


def test_wrong_return_type_is_typed():
    spec = TrialSpec(
        name="unit/badtype",
        area="unit",
        bench_file="bench_unit.py",
        runner=lambda config, seed: {"not": "a measurement"},
    )
    with pytest.raises(TrialExecutionError, match="TrialMeasurement"):
        run_trial(spec)


def test_runner_exception_is_wrapped():
    def boom(config, seed):
        raise ValueError("kaput")

    spec = TrialSpec(
        name="unit/boom", area="unit", bench_file="bench_unit.py", runner=boom
    )
    with pytest.raises(TrialExecutionError, match="kaput"):
        run_trial(spec)
