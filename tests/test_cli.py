"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestCli:
    def test_fig9_prints_table(self, capsys):
        assert main(["fig9", "--scale", "300"]) == 0
        out = capsys.readouterr().out
        assert "Figure 9" in out
        assert "10G" in out and "80G" in out

    def test_constants(self, capsys):
        assert main(["constants", "--scale", "300"]) == 0
        out = capsys.readouterr().out
        assert "drm_peak" in out
        assert "paper" in out

    def test_fig7_prints_breakdown(self, capsys):
        assert main(["fig7", "--scale", "300"]) == 0
        out = capsys.readouterr().out
        assert "key_generation" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_elle(self, capsys):
        assert main(["elle", "--scale", "500"]) == 0
        out = capsys.readouterr().out
        assert "serializable" in out
