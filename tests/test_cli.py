"""Tests for the command-line interface."""

from __future__ import annotations

import socket

import pytest

from repro.cli import main


class TestCli:
    def test_fig9_prints_table(self, capsys):
        assert main(["fig9", "--scale", "300"]) == 0
        out = capsys.readouterr().out
        assert "Figure 9" in out
        assert "10G" in out and "80G" in out

    def test_constants(self, capsys):
        assert main(["constants", "--scale", "300"]) == 0
        out = capsys.readouterr().out
        assert "drm_peak" in out
        assert "paper" in out

    def test_fig7_prints_breakdown(self, capsys):
        assert main(["fig7", "--scale", "300"]) == 0
        out = capsys.readouterr().out
        assert "key_generation" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_elle(self, capsys):
        assert main(["elle", "--scale", "500"]) == 0
        out = capsys.readouterr().out
        assert "serializable" in out


class TestFailurePaths:
    """Operational mistakes exit nonzero with one-line diagnoses, never
    tracebacks — main() returns a code instead of letting anything raise."""

    def test_recover_missing_directory_exits_2(self, tmp_path, capsys):
        missing = str(tmp_path / "nope")
        assert main(["--recover", missing]) == 2
        captured = capsys.readouterr()
        assert "does not exist" in captured.err
        assert "Traceback" not in captured.err + captured.out

    def test_recover_corrupt_directory_exits_1(self, tmp_path, capsys):
        corrupt = tmp_path / "corrupt"
        corrupt.mkdir()
        (corrupt / "junk.bin").write_bytes(b"\x00garbage\xff" * 16)
        assert main(["--recover", str(corrupt)]) == 1
        captured = capsys.readouterr()
        assert "recovery from" in captured.out and "failed" in captured.out
        assert "Traceback" not in captured.err + captured.out

    def test_serve_malformed_address_exits_2(self, capsys):
        assert main(["--serve", "not-an-address"]) == 2
        assert "host:port" in capsys.readouterr().err

    def test_serve_port_in_use_reports_cleanly(self, capsys):
        holder = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        holder.bind(("127.0.0.1", 0))
        holder.listen(1)
        port = holder.getsockname()[1]
        try:
            assert main(["--serve", f"127.0.0.1:{port}"]) == 2
        finally:
            holder.close()
        captured = capsys.readouterr()
        assert "cannot listen on" in captured.err
        assert "Traceback" not in captured.err + captured.out

    def test_connect_unreachable_server_exits_2(self, capsys):
        # Grab a port that is definitely closed right now.
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        assert main(["--connect", f"127.0.0.1:{port}"]) == 2
        captured = capsys.readouterr()
        assert "cannot reach" in captured.err
        assert "Traceback" not in captured.err + captured.out


class TestScrubCli:
    """--scrub: proactive verify-and-repair of a durability directory."""

    def _durable_dir(self, tmp_path):
        # --recover's demo leaves a real durable deployment behind
        # (checkpoints with mirrors, sealed segments) — exactly what an
        # operator would point --scrub at.
        directory = str(tmp_path / "deploy")
        (tmp_path / "deploy").mkdir()
        assert main(["--recover", directory]) == 0
        return directory

    def test_clean_directory_exits_0(self, tmp_path, capsys):
        directory = self._durable_dir(tmp_path)
        capsys.readouterr()
        assert main(["--scrub", directory]) == 0
        out = capsys.readouterr().out
        assert "clean" in out and "0 repaired" in out

    def test_rotted_checkpoint_is_healed_exit_0(self, tmp_path, capsys):
        from repro.faults import CheckpointRot

        directory = self._durable_dir(tmp_path)
        CheckpointRot().apply(directory)
        capsys.readouterr()
        assert main(["--scrub", directory]) == 0
        out = capsys.readouterr().out
        assert "healed" in out and "1 repaired" in out
        assert "[repaired] checkpoint" in out
        # The damage is gone, not just survived: a second pass is clean.
        assert main(["--scrub", directory]) == 0
        assert "clean" in capsys.readouterr().out

    def test_audit_only_reports_damage_and_exits_1(self, tmp_path, capsys):
        from repro.faults import CheckpointRot

        directory = self._durable_dir(tmp_path)
        CheckpointRot().apply(directory)
        capsys.readouterr()
        assert main(["--scrub", directory, "--audit-only"]) == 1
        out = capsys.readouterr().out
        assert "DAMAGED" in out and "(audit only)" in out
        assert "[reported] checkpoint" in out
        # Nothing was touched: a repairing pass still finds the rot.
        assert main(["--scrub", directory]) == 0
        assert "1 repaired" in capsys.readouterr().out

    def test_missing_directory_exits_2(self, tmp_path, capsys):
        assert main(["--scrub", str(tmp_path / "nope")]) == 2
        captured = capsys.readouterr()
        assert "does not exist" in captured.err
        assert "Traceback" not in captured.err + captured.out
