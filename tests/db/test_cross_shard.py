"""Cross-shard two-phase reserve/release (DESIGN.md §14).

The regression this file pins: a transaction whose acquisition fails on
shard *k* must release the reservations it already took on shards < k
before re-queueing.  Without the release, a doomed reservation blocks
same-round transactions out of keys nobody will write.
"""

from __future__ import annotations

import pytest

from repro.db.detreserve import CrossShardPlan, CrossShardReserver
from repro.errors import ConcurrencyError
from repro.obs.metrics import MetricsRegistry


def _shard_of(key):
    # keys are ("acct", n): even accounts on shard 0, odd on shard 1
    return key[1] % 2


def _plan(txn_id, writes, reads=(), priority=0):
    return CrossShardPlan(
        txn_id=txn_id,
        priority=priority,
        read_keys=frozenset(reads),
        write_keys=frozenset(writes),
    )


class TestCrossShardReserver:
    def test_disjoint_plans_share_a_round(self):
        reserver = CrossShardReserver(_shard_of, MetricsRegistry())
        rounds = reserver.plan_rounds(
            [
                _plan(1, [("acct", 0), ("acct", 1)]),
                _plan(2, [("acct", 2), ("acct", 3)]),
            ]
        )
        assert [[p.txn_id for p in rnd] for rnd in rounds] == [[1, 2]]

    def test_conflicting_plans_serialize_by_rank(self):
        reserver = CrossShardReserver(_shard_of, MetricsRegistry())
        rounds = reserver.plan_rounds(
            [
                _plan(2, [("acct", 0), ("acct", 1)]),
                _plan(1, [("acct", 1), ("acct", 2)]),
            ]
        )
        # txn 1 outranks txn 2; they share ("acct", 1)
        assert [[p.txn_id for p in rnd] for rnd in rounds] == [[1], [2]]

    def test_partial_release_frees_earlier_shards(self):
        """The opposite-key-order regression.

        T1 (rank 1) takes {a0 (shard 0), a1 (shard 1)}.  T2 wants
        {a2 (shard 0), a1 (shard 1)}: ascending shard order means it
        acquires a2 first, then collides with T1 on a1 — so it must give
        a2 back.  T3 wants only {a2}: it can win in the SAME round iff T2
        released.  A reserver that keeps T2's partial reservation pushes
        T3 into round 2 for no reason.
        """
        registry = MetricsRegistry()
        reserver = CrossShardReserver(_shard_of, registry)
        a0, a1, a2 = ("acct", 0), ("acct", 1), ("acct", 2)
        rounds = reserver.plan_rounds(
            [
                _plan(1, [a0, a1]),
                _plan(2, [a2, a1]),  # loses on a1 after taking a2
                _plan(3, [a2]),      # must still win round 1
            ]
        )
        assert [[p.txn_id for p in rnd] for rnd in rounds] == [[1, 3], [2]]
        assert registry.counter("shard.reserve_conflicts").value == 1
        assert registry.counter("shard.partial_releases").value == 1
        assert registry.counter("shard.cross_rounds").value == 2

    def test_winner_may_not_read_another_winners_write(self):
        reserver = CrossShardReserver(_shard_of, MetricsRegistry())
        rounds = reserver.plan_rounds(
            [
                _plan(1, [("acct", 0)]),
                _plan(2, [("acct", 2)], reads=[("acct", 0)]),
            ]
        )
        # txn 2 writes a disjoint key but reads txn 1's write: round 2,
        # where it observes the committed value instead of a stale one.
        assert [[p.txn_id for p in rnd] for rnd in rounds] == [[1], [2]]

    def test_priority_outranks_txn_id(self):
        reserver = CrossShardReserver(_shard_of, MetricsRegistry())
        rounds = reserver.plan_rounds(
            [
                _plan(9, [("acct", 0)], priority=0),
                _plan(1, [("acct", 0)], priority=5),
            ]
        )
        assert [[p.txn_id for p in rnd] for rnd in rounds] == [[9], [1]]

    def test_duplicate_txn_ids_rejected(self):
        reserver = CrossShardReserver(_shard_of, MetricsRegistry())
        with pytest.raises(ConcurrencyError):
            reserver.plan_rounds([_plan(1, [("acct", 0)]), _plan(1, [("acct", 2)])])

    def test_empty_batch(self):
        reserver = CrossShardReserver(_shard_of, MetricsRegistry())
        assert reserver.plan_rounds([]) == []
