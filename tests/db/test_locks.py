"""Tests for the lock manager (wait-die semantics)."""

from __future__ import annotations

from repro.db.locks import LockManager, LockMode, LockOutcome


class TestBasicLocking:
    def test_fresh_key_grants(self):
        lm = LockManager()
        assert lm.acquire(1, ("k",), LockMode.SHARED) is LockOutcome.GRANTED
        assert lm.acquire(2, ("other",), LockMode.EXCLUSIVE) is LockOutcome.GRANTED

    def test_shared_locks_coexist(self):
        lm = LockManager()
        assert lm.acquire(1, ("k",), LockMode.SHARED) is LockOutcome.GRANTED
        assert lm.acquire(2, ("k",), LockMode.SHARED) is LockOutcome.GRANTED
        assert lm.holders(("k",)) == {1, 2}

    def test_exclusive_excludes(self):
        lm = LockManager()
        assert lm.acquire(2, ("k",), LockMode.EXCLUSIVE) is LockOutcome.GRANTED
        # Older requester (1 < 2) waits for the younger holder.
        assert lm.acquire(1, ("k",), LockMode.SHARED) is LockOutcome.WAIT
        # Younger requester (3 > 2) dies.
        assert lm.acquire(3, ("k",), LockMode.SHARED) is LockOutcome.ABORT

    def test_reacquire_is_idempotent(self):
        lm = LockManager()
        lm.acquire(1, ("k",), LockMode.EXCLUSIVE)
        assert lm.acquire(1, ("k",), LockMode.EXCLUSIVE) is LockOutcome.GRANTED
        assert lm.acquire(1, ("k",), LockMode.SHARED) is LockOutcome.GRANTED


class TestUpgrades:
    def test_lone_reader_upgrades(self):
        lm = LockManager()
        lm.acquire(1, ("k",), LockMode.SHARED)
        assert lm.acquire(1, ("k",), LockMode.EXCLUSIVE) is LockOutcome.GRANTED
        assert lm.mode(("k",)) is LockMode.EXCLUSIVE

    def test_upgrade_with_other_readers_blocks_or_dies(self):
        lm = LockManager()
        lm.acquire(1, ("k",), LockMode.SHARED)
        lm.acquire(2, ("k",), LockMode.SHARED)
        # 1 is older than the other holder (2): waits.
        assert lm.acquire(1, ("k",), LockMode.EXCLUSIVE) is LockOutcome.WAIT
        # 2 sees older holder 1: dies.
        assert lm.acquire(2, ("k",), LockMode.EXCLUSIVE) is LockOutcome.ABORT


class TestRelease:
    def test_release_all_frees_keys(self):
        lm = LockManager()
        lm.acquire(1, ("a",), LockMode.EXCLUSIVE)
        lm.acquire(1, ("b",), LockMode.SHARED)
        released = lm.release_all(1)
        assert set(released) == {("a",), ("b",)}
        assert lm.acquire(2, ("a",), LockMode.EXCLUSIVE) is LockOutcome.GRANTED

    def test_release_keeps_other_holders(self):
        lm = LockManager()
        lm.acquire(1, ("k",), LockMode.SHARED)
        lm.acquire(2, ("k",), LockMode.SHARED)
        lm.release_all(1)
        assert lm.holders(("k",)) == {2}

    def test_wait_die_never_deadlocks_pairwise(self):
        # T1 holds a, T2 holds b; T1 wants b (waits: 1 < 2),
        # T2 wants a (dies: holder 1 < 2) -- no cycle possible.
        lm = LockManager()
        lm.acquire(1, ("a",), LockMode.EXCLUSIVE)
        lm.acquire(2, ("b",), LockMode.EXCLUSIVE)
        assert lm.acquire(1, ("b",), LockMode.EXCLUSIVE) is LockOutcome.WAIT
        assert lm.acquire(2, ("a",), LockMode.EXCLUSIVE) is LockOutcome.ABORT
        lm.assert_consistent()
