"""Tests for deterministic reservation (Algorithm 5)."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.detreserve import DeterministicReservationExecutor
from repro.db.kvstore import KVStore
from repro.db.txn import Transaction

from .helpers import BLIND_WRITE, INCREMENT, blind_write, increment, read_only, transfer


class _SamePriority(Transaction):
    """A transaction whose priority ignores its id (ties on purpose)."""

    @property
    def priority(self) -> int:
        return 0


class TestBasics:
    def test_single_txn(self):
        store = KVStore({("acct", 1): 100, ("acct", 2): 0})
        executor = DeterministicReservationExecutor(store, processing_batch_size=8)
        report = executor.run([transfer(1, 1, 2, 25)])
        assert store.get(("acct", 1)) == 75
        assert store.get(("acct", 2)) == 25
        assert report.stats.rounds == 1

    def test_all_txns_eventually_commit(self):
        store = KVStore()
        executor = DeterministicReservationExecutor(store, processing_batch_size=4)
        report = executor.run([increment(i, 1) for i in range(1, 13)])
        assert store.get(("row", 1)) == 12
        assert report.stats.committed == 12
        assert all(r.committed for r in report.results.values())

    def test_conflicting_txns_take_multiple_rounds(self):
        store = KVStore()
        executor = DeterministicReservationExecutor(store, processing_batch_size=10)
        report = executor.run([increment(i, 1) for i in range(1, 11)])
        # All ten conflict on the same key: one commits per round.
        assert report.stats.rounds == 10
        assert report.stats.aborted_retries == 9 + 8 + 7 + 6 + 5 + 4 + 3 + 2 + 1

    def test_disjoint_txns_commit_in_one_round(self):
        store = KVStore()
        executor = DeterministicReservationExecutor(store, processing_batch_size=64)
        report = executor.run([increment(i, i) for i in range(1, 33)])
        assert report.stats.rounds == 1
        assert report.stats.batch_sizes == [32]

    def test_readers_do_not_conflict(self):
        store = KVStore({("row", 1): 5})
        executor = DeterministicReservationExecutor(store, processing_batch_size=64)
        report = executor.run([read_only(i, 1) for i in range(1, 11)])
        assert report.stats.rounds == 1
        assert all(r.outputs == (5,) for r in report.results.values())

    def test_reader_aborts_when_writer_reserves(self):
        store = KVStore({("row", 1): 5})
        executor = DeterministicReservationExecutor(store, processing_batch_size=64)
        # Writer (id 1) has priority over the reader (id 2).
        report = executor.run([increment(1, 1), read_only(2, 1)])
        assert report.stats.rounds == 2
        # The reader observes the post-increment value in round 2.
        assert report.results[2].outputs == (6,)


class TestDeterminism:
    def test_same_input_same_schedule(self):
        def run():
            store = KVStore({("acct", i): 100 for i in range(4)})
            executor = DeterministicReservationExecutor(store, processing_batch_size=8)
            txns = [transfer(i, i % 4, (i + 1) % 4, 3) for i in range(1, 17)]
            report = executor.run(txns)
            return [u.txn_ids for u in report.schedule], store.snapshot()

        assert run() == run()

    def test_batches_are_serializable(self):
        """Each batch has a unique writer per key, and any co-batched reader
        of a written key has higher priority than the writer (the
        reader-before-writer rule that keeps the batch serializable)."""
        store = KVStore({("acct", i): 100 for i in range(4)})
        executor = DeterministicReservationExecutor(store, processing_batch_size=16)
        txns = [transfer(i, i % 4, (i + 1) % 4, 3) for i in range(1, 25)]
        by_id = {t.txn_id: t for t in txns}
        report = executor.run(txns)
        for unit in report.schedule:
            writers: dict[tuple, int] = {}
            readers: dict[tuple, set[int]] = {}
            for txn_id in unit.txn_ids:
                txn = by_id[txn_id]
                for key in txn.write_keys():
                    assert key not in writers or writers[key] == txn_id
                    writers[key] = txn_id
                for key in txn.read_keys():
                    readers.setdefault(key, set()).add(txn_id)
            for key, writer in writers.items():
                for reader in readers.get(key, set()) - {writer}:
                    assert reader < writer

    def test_read_write_embrace_makes_progress(self):
        """Two transactions in a mutual read/write embrace must not deadlock
        the round (the liveness gap in Algorithm 5's literal pseudo-code)."""
        from repro.db.txn import Transaction
        from repro.vc.program import (
            Emit,
            KeyTemplate,
            Param,
            Program,
            ReadStmt,
            ReadVal,
            WriteStmt,
        )

        cross = Program(
            name="cross",
            params=("r", "w"),
            statements=(
                ReadStmt("v", KeyTemplate(("row", Param("r")))),
                WriteStmt(KeyTemplate(("row", Param("w"))), ReadVal("v")),
                Emit(ReadVal("v")),
            ),
        )
        store = KVStore({("row", 1): 10, ("row", 2): 20})
        executor = DeterministicReservationExecutor(store, processing_batch_size=8)
        txns = [
            Transaction(1, cross, {"r": 1, "w": 2}),  # reads 1, writes 2
            Transaction(2, cross, {"r": 2, "w": 1}),  # reads 2, writes 1
        ]
        report = executor.run(txns)
        assert report.stats.committed == 2
        # T1 (higher priority) commits round 1; T2 retries and sees T1's write.
        assert report.schedule[0].txn_ids == (1,)
        assert report.results[2].outputs == (10,)  # T2 reads row2 = T1's write

    def test_highest_priority_always_wins(self):
        store = KVStore()
        executor = DeterministicReservationExecutor(store, processing_batch_size=8)
        report = executor.run([increment(i, 9) for i in (5, 3, 8)])
        # Smallest id commits first.
        assert report.schedule[0].txn_ids == (3,)


class TestDuplicatePriorities:
    """Regression: reservations must tie-break by ``(priority, txn_id)``.

    With ``R[x]`` keyed by bare priority, two equal-priority writers of the
    same key each see "their own" reservation in the commit check, so a
    write-write conflict lands inside one claimed-non-conflicting batch
    (and read-modify-writes lose updates).
    """

    def test_equal_priority_blind_writers_never_share_a_batch(self):
        store = KVStore()
        executor = DeterministicReservationExecutor(store, processing_batch_size=8)
        txns = [
            _SamePriority(i, BLIND_WRITE, {"k": 1, "v": 100 + i}) for i in (1, 2, 3)
        ]
        report = executor.run(txns)
        assert report.stats.committed == 3
        # One writer of ("row", 1) per batch: three rounds of one.
        assert [unit.txn_ids for unit in report.schedule] == [(1,), (2,), (3,)]
        # Ties break by txn id, so the largest id writes last.
        assert store.get(("row", 1)) == 103

    def test_equal_priority_increments_lose_no_updates(self):
        store = KVStore({("row", 1): 0})
        executor = DeterministicReservationExecutor(store, processing_batch_size=8)
        report = executor.run(
            [_SamePriority(i, INCREMENT, {"k": 1}) for i in (1, 2, 3)]
        )
        # Under the bare-priority bug all three commit in round one, each
        # having read 0 — the final value collapses to 1.
        assert store.get(("row", 1)) == 3
        assert report.stats.rounds == 3

    def test_equal_priority_disjoint_writers_still_batch_together(self):
        store = KVStore()
        executor = DeterministicReservationExecutor(store, processing_batch_size=8)
        report = executor.run(
            [_SamePriority(i, BLIND_WRITE, {"k": i, "v": i}) for i in (1, 2, 3)]
        )
        # The tie-break must not cost parallelism on disjoint key sets.
        assert report.stats.rounds == 1
        assert report.schedule[0].txn_ids == (1, 2, 3)


class TestEquivalenceToSerial:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=3),
                st.integers(min_value=0, max_value=3),
                st.integers(min_value=0, max_value=10),
            ),
            min_size=1,
            max_size=20,
        ),
        st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=30, deadline=None)
    def test_final_state_matches_priority_serial_order(self, specs, batch_size):
        """DR must be equivalent to *some* serial order; we check money
        conservation plus replay equivalence via the recorded batches."""
        initial = {("acct", i): 100 for i in range(4)}
        store = KVStore(dict(initial))
        executor = DeterministicReservationExecutor(store, processing_batch_size=batch_size)
        # A self-transfer's second write clobbers its first (last-write-wins
        # inside one transaction), which "mints" money at the application
        # level; keep the conservation invariant meaningful.
        txns = [
            transfer(i + 1, s, d, a)
            for i, (s, d, a) in enumerate(specs)
            if s != d
        ]
        if not txns:
            return
        by_id = {t.txn_id: t for t in txns}
        report = executor.run(txns)

        # Replay in batch order (any order within a batch): must reproduce.
        replay = KVStore(dict(initial))
        for unit in report.schedule:
            for txn_id in unit.txn_ids:
                txn = by_id[txn_id]
                result = txn.program.execute(txn.params, replay.get)
                for key, value in result.writes:
                    replay.put(key, value)
        assert replay.snapshot() == store.snapshot()

        total = sum(store.get(("acct", i)) for i in range(4))
        assert total == 400

    def test_schedule_unit_reads_are_snapshot_values(self):
        store = KVStore({("row", 1): 10})
        executor = DeterministicReservationExecutor(store, processing_batch_size=8)
        report = executor.run([increment(1, 1), increment(2, 1)])
        assert report.schedule[0].reads == ((("row", 1), 10),)
        assert report.schedule[1].reads == ((("row", 1), 11),)

    def test_blind_writes_serialize_by_priority(self):
        store = KVStore()
        executor = DeterministicReservationExecutor(store, processing_batch_size=16)
        executor.run([blind_write(i, 1, 100 + i) for i in range(1, 6)])
        assert store.get(("row", 1)) == 105  # last (lowest-priority) writer


class TestTraces:
    def test_batches_recorded(self):
        store = KVStore()
        executor = DeterministicReservationExecutor(store, processing_batch_size=8)
        report = executor.run([increment(i, i) for i in range(1, 5)])
        assert report.traces.batches == [(1, 2, 3, 4)]

    def test_wr_edges_across_rounds(self):
        store = KVStore()
        executor = DeterministicReservationExecutor(store, processing_batch_size=8)
        report = executor.run([increment(1, 1), increment(2, 1)])
        assert any(
            e.src == 1 and e.dst == 2 and e.kind in ("wr", "ww")
            for e in report.traces.edges
        )

    def test_traces_acyclic(self):
        store = KVStore({("acct", i): 50 for i in range(3)})
        executor = DeterministicReservationExecutor(store, processing_batch_size=4)
        txns = [transfer(i, i % 3, (i + 1) % 3, 1) for i in range(1, 20)]
        report = executor.run(txns)
        assert report.traces.is_acyclic(report.results.keys())
