"""Tests for command logging and deterministic replay."""

from __future__ import annotations

import json
import zlib

import pytest

from repro.db.commandlog import decode_batch, encode_batch, replay
from repro.db.database import Database
from repro.errors import CommandLogError, ReproError

from .helpers import INCREMENT, TRANSFER, increment, transfer

PROGRAMS = {INCREMENT.name: INCREMENT, TRANSFER.name: TRANSFER}


class TestEncoding:
    def test_roundtrip(self):
        txns = [transfer(1, 0, 1, 5), increment(2, 3)]
        log = encode_batch(txns)
        restored = decode_batch(log, PROGRAMS)
        assert [t.txn_id for t in restored] == [1, 2]
        assert restored[0].params == {"src": 0, "dst": 1, "amount": 5}
        assert restored[0].program is TRANSFER

    def test_log_is_compact(self):
        txns = [increment(i, i % 10) for i in range(1, 201)]
        log = encode_batch(txns)
        # "as small as a few bytes indicating the transaction order and
        # their inputs" — well under 20 bytes per transaction compressed.
        assert len(log) < 20 * len(txns)

    def test_magic_checked(self):
        with pytest.raises(ReproError):
            decode_batch(b"XXXX" + b"junk", PROGRAMS)

    def test_unknown_program_rejected(self):
        log = encode_batch([increment(1, 1)])
        with pytest.raises(ReproError):
            decode_batch(log, {})


class TestCorruptLogs:
    """Regression: the codec's internal exceptions must not leak raw.

    ``resync()`` replays these logs, so every malformed shape has to
    surface as the typed :class:`CommandLogError` — never a bare
    ``zlib.error``, ``json.JSONDecodeError``, or ``KeyError``.
    """

    def _encode(self, payload) -> bytes:
        return b"LCL1" + zlib.compress(json.dumps(payload).encode())

    def test_truncated_log(self):
        log = encode_batch([increment(i, i) for i in range(1, 9)])
        with pytest.raises(CommandLogError, match="corrupt command log"):
            decode_batch(log[: len(log) // 2], PROGRAMS)

    def test_bit_flipped_payload(self):
        log = bytearray(encode_batch([transfer(1, 0, 1, 5)]))
        log[10] ^= 0xFF  # inside the compressed stream
        with pytest.raises(CommandLogError):
            decode_batch(bytes(log), PROGRAMS)

    def test_compressed_garbage_is_not_json(self):
        log = b"LCL1" + zlib.compress(b"{not json")
        with pytest.raises(CommandLogError, match="not valid JSON"):
            decode_batch(log, PROGRAMS)

    def test_payload_must_be_a_list(self):
        with pytest.raises(CommandLogError, match="list of entries"):
            decode_batch(self._encode({"id": 1}), PROGRAMS)

    def test_entry_must_be_an_object(self):
        with pytest.raises(CommandLogError, match="entry 0 is not an object"):
            decode_batch(self._encode([42]), PROGRAMS)

    def test_entry_missing_field(self):
        entry = {"id": 1, "p": INCREMENT.name}  # no "a"
        with pytest.raises(CommandLogError, match="missing field 'a'"):
            decode_batch(self._encode([entry]), PROGRAMS)

    def test_entry_malformed_params(self):
        entry = {"id": 1, "p": INCREMENT.name, "a": [1, 2]}
        with pytest.raises(CommandLogError, match="malformed parameters"):
            decode_batch(self._encode([entry]), PROGRAMS)

    def test_command_log_error_is_a_repro_error(self):
        with pytest.raises(ReproError):
            decode_batch(b"XXXX", PROGRAMS)


class TestReplay:
    def test_replay_reproduces_final_state(self):
        initial = {("acct", i): 100 for i in range(4)}
        live = Database(initial=dict(initial), cc="dr", processing_batch_size=8)
        txns = [transfer(i, i % 4, (i + 1) % 4, 3) for i in range(1, 20)]
        live.run(txns)
        log = encode_batch(txns)
        replayed = replay(
            log, PROGRAMS, initial=dict(initial), cc="dr", processing_batch_size=8
        )
        assert replayed.snapshot() == live.snapshot()

    def test_replay_determinism_across_cc_settings(self):
        """The same log under the same CC configuration is bit-identical;
        different processing batch sizes may schedule differently but the
        final state still matches (serializable equivalence on this
        workload)."""
        initial = {("acct", i): 50 for i in range(3)}
        txns = [transfer(i, i % 3, (i + 1) % 3, 1) for i in range(1, 15)]
        log = encode_batch(txns)
        a = replay(log, PROGRAMS, initial=dict(initial), processing_batch_size=4)
        b = replay(log, PROGRAMS, initial=dict(initial), processing_batch_size=4)
        assert a.snapshot() == b.snapshot()
