"""Shared program/transaction builders for the db tests."""

from __future__ import annotations

from repro.db.txn import Transaction
from repro.vc.program import (
    Add,
    Const,
    Emit,
    KeyTemplate,
    Param,
    Program,
    ReadStmt,
    ReadVal,
    Sub,
    WriteStmt,
)

TRANSFER = Program(
    name="transfer",
    params=("src", "dst", "amount"),
    statements=(
        ReadStmt("src_bal", KeyTemplate(("acct", Param("src")))),
        ReadStmt("dst_bal", KeyTemplate(("acct", Param("dst")))),
        WriteStmt(
            KeyTemplate(("acct", Param("src"))), Sub(ReadVal("src_bal"), Param("amount"))
        ),
        WriteStmt(
            KeyTemplate(("acct", Param("dst"))), Add(ReadVal("dst_bal"), Param("amount"))
        ),
        Emit(Add(ReadVal("src_bal"), ReadVal("dst_bal"))),
    ),
)

INCREMENT = Program(
    name="increment",
    params=("k",),
    statements=(
        ReadStmt("v", KeyTemplate(("row", Param("k")))),
        WriteStmt(KeyTemplate(("row", Param("k"))), Add(ReadVal("v"), Const(1))),
        Emit(ReadVal("v")),
    ),
)

READ_ONLY = Program(
    name="read_only",
    params=("k",),
    statements=(
        ReadStmt("v", KeyTemplate(("row", Param("k")))),
        Emit(ReadVal("v")),
    ),
)

BLIND_WRITE = Program(
    name="blind_write",
    params=("k", "v"),
    statements=(WriteStmt(KeyTemplate(("row", Param("k"))), Param("v")),),
)


def transfer(txn_id: int, src: int, dst: int, amount: int) -> Transaction:
    return Transaction(txn_id, TRANSFER, {"src": src, "dst": dst, "amount": amount})


def increment(txn_id: int, k: int) -> Transaction:
    return Transaction(txn_id, INCREMENT, {"k": k})


def read_only(txn_id: int, k: int) -> Transaction:
    return Transaction(txn_id, READ_ONLY, {"k": k})


def blind_write(txn_id: int, k: int, v: int) -> Transaction:
    return Transaction(txn_id, BLIND_WRITE, {"k": k, "v": v})
