"""Property-based invariants of the lock manager under random operations."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.locks import LockManager, LockMode, LockOutcome

operations = st.lists(
    st.tuples(
        st.sampled_from(["acquire_s", "acquire_x", "release"]),
        st.integers(min_value=1, max_value=5),  # txn id
        st.integers(min_value=0, max_value=3),  # key id
    ),
    min_size=1,
    max_size=60,
)


@given(operations)
@settings(max_examples=200)
def test_lock_invariants_hold_under_random_schedules(ops):
    """Exclusive locks are exclusive; shared coexist; wait-die never lets a
    younger requester wait behind an older holder."""
    manager = LockManager()
    holders: dict[tuple, set[int]] = {}
    modes: dict[tuple, LockMode] = {}

    for action, txn, key_id in ops:
        key = ("k", key_id)
        if action == "release":
            manager.release_all(txn)
            for held in holders.values():
                held.discard(txn)
            continue
        mode = LockMode.SHARED if action == "acquire_s" else LockMode.EXCLUSIVE
        outcome = manager.acquire(txn, key, mode)
        current = holders.setdefault(key, set())
        if outcome is LockOutcome.GRANTED:
            if mode is LockMode.EXCLUSIVE:
                # Exclusivity: nobody else may hold the key.
                assert current <= {txn}, (key, current, txn)
                modes[key] = LockMode.EXCLUSIVE
            else:
                if current == set() :
                    modes[key] = LockMode.SHARED
            current.add(txn)
        elif outcome is LockOutcome.WAIT:
            # Wait-die: the requester must be older than every other holder.
            others = manager.holders(key) - {txn}
            assert others, "waiting with no conflicting holder"
            assert txn < min(others)
        else:  # ABORT
            others = manager.holders(key) - {txn}
            assert others and min(others) < txn
        # Cross-check the manager's own view against the model.
        manager.assert_consistent()
        assert manager.holders(key) == frozenset(current)
