"""Property-based tests of the LCL1 command-log codec.

The command log is recovery-critical twice over: ``resync()`` replays it in
memory and the WAL journals it on disk, so the codec must (a) round-trip
any batch a program can produce — unicode names, huge ints, empty batches —
and (b) degrade *typed* on damaged bytes: every truncation or corruption
raises :class:`~repro.errors.CommandLogError`, never a raw ``IndexError``,
``UnicodeDecodeError``, ``zlib.error`` or ``KeyError``.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.commandlog import decode_batch, encode_batch
from repro.db.txn import Transaction
from repro.errors import CommandLogError
from repro.vc.program import Program

# Program/parameter names exercise the full unicode range the JSON payload
# must survive (ASCII, accents, CJK, emoji, control-adjacent chars).
_names = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",)), min_size=1, max_size=12
)
# Values cover the ints a workload can produce, far past 64 bits.
_values = st.integers(min_value=-(2**256), max_value=2**256)


@st.composite
def _batches(draw):
    programs = {}
    txns = []
    next_id = 1
    for _ in range(draw(st.integers(min_value=0, max_value=5))):
        name = draw(_names)
        params = draw(
            st.dictionaries(_names, _values, min_size=0, max_size=4)
        )
        program = programs.setdefault(
            name, Program(name=name, params=tuple(params), statements=())
        )
        txns.append(Transaction(txn_id=next_id, program=program, params=params))
        next_id += 1
    return txns, programs


@given(_batches())
@settings(max_examples=150)
def test_round_trip_any_batch(batch):
    txns, programs = batch
    decoded = decode_batch(encode_batch(txns), programs)
    assert [(t.txn_id, t.program.name, t.params) for t in decoded] == [
        (t.txn_id, t.program.name, t.params) for t in txns
    ]


def test_empty_batch_round_trips():
    assert decode_batch(encode_batch([]), {}) == []


def test_unicode_and_large_ints_round_trip():
    program = Program(name="transfér-α-💸", params=("сумма",), statements=())
    txns = [
        Transaction(
            txn_id=1, program=program, params={"сумма": 2**200 + 17}
        )
    ]
    decoded = decode_batch(encode_batch(txns), {program.name: program})
    assert decoded[0].params == {"сумма": 2**200 + 17}
    assert decoded[0].program is program


def _sample_log():
    program = Program(name="näme-☃", params=("k", "amount"), statements=())
    txns = [
        Transaction(txn_id=i, program=program, params={"k": i, "amount": 2**80})
        for i in range(1, 4)
    ]
    return encode_batch(txns), {program.name: program}


def test_every_truncation_length_raises_commandlog_error():
    """A sweep over all prefixes: the codec's only failure mode is typed."""
    log, programs = _sample_log()
    for cut in range(len(log)):
        with pytest.raises(CommandLogError):
            decode_batch(log[:cut], programs)


@given(
    position=st.integers(min_value=0, max_value=10_000),
    mask=st.integers(min_value=1, max_value=255),
)
@settings(max_examples=150)
def test_corruption_raises_commandlog_error_or_decodes(position, mask):
    """Flipping any byte either still decodes (flip landed in slack) or
    raises CommandLogError — never a raw codec exception."""
    log, programs = _sample_log()
    data = bytearray(log)
    data[position % len(data)] ^= mask
    try:
        decode_batch(bytes(data), programs)
    except CommandLogError:
        pass


def test_unknown_program_is_a_typed_error():
    log, _programs = _sample_log()
    with pytest.raises(CommandLogError, match="unknown stored procedure"):
        decode_batch(log, {})


def test_malformed_entries_are_typed_errors():
    import json
    import zlib

    def forge(payload) -> bytes:
        return b"LCL1" + zlib.compress(json.dumps(payload).encode())

    program = Program(name="p", params=(), statements=())
    programs = {"p": program}
    for payload in (
        {"not": "a list"},
        ["not an object"],
        [{"p": "p", "a": {}}],  # missing id
        [{"id": 1, "p": "p", "a": "not a dict"}],
    ):
        with pytest.raises(CommandLogError):
            decode_batch(forge(payload), programs)
