"""Tests for the 2PL executor."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.kvstore import KVStore
from repro.db.twopl import TwoPhaseLockingExecutor

from .helpers import blind_write, increment, read_only, transfer


class TestSingleThreaded:
    def test_transfer_applies(self):
        store = KVStore({("acct", 1): 100, ("acct", 2): 50})
        executor = TwoPhaseLockingExecutor(store, num_threads=1)
        report = executor.run([transfer(1, 1, 2, 30)])
        assert store.get(("acct", 1)) == 70
        assert store.get(("acct", 2)) == 80
        assert report.results[1].committed
        assert report.results[1].outputs == (150,)

    def test_sequential_increments_accumulate(self):
        store = KVStore()
        executor = TwoPhaseLockingExecutor(store, num_threads=1)
        report = executor.run([increment(i, 7) for i in range(1, 11)])
        assert store.get(("row", 7)) == 10
        assert all(r.committed for r in report.results.values())
        # Single-threaded 2PL commits in submission order.
        assert [u.txn_ids[0] for u in report.schedule] == list(range(1, 11))

    def test_schedule_units_are_per_txn(self):
        store = KVStore()
        executor = TwoPhaseLockingExecutor(store, num_threads=1)
        report = executor.run([increment(1, 1), increment(2, 2)])
        assert all(len(u.txn_ids) == 1 for u in report.schedule)

    def test_traces_capture_dependencies(self):
        store = KVStore()
        executor = TwoPhaseLockingExecutor(store, num_threads=1)
        report = executor.run([increment(1, 7), increment(2, 7)])
        kinds = {(e.src, e.dst, e.kind) for e in report.traces.edges}
        assert (1, 2, "wr") in kinds or (1, 2, "ww") in kinds

    def test_read_set_excludes_buffered_reads(self):
        from repro.db.txn import Transaction
        from repro.vc.program import (
            Const,
            Emit,
            KeyTemplate,
            Param,
            Program,
            ReadStmt,
            ReadVal,
            WriteStmt,
        )

        ryw = Program(
            name="ryw2",
            params=("k",),
            statements=(
                WriteStmt(KeyTemplate(("row", Param("k"))), Const(5)),
                ReadStmt("back", KeyTemplate(("row", Param("k")))),
                Emit(ReadVal("back")),
            ),
        )
        store = KVStore()
        executor = TwoPhaseLockingExecutor(store, num_threads=1)
        report = executor.run([Transaction(1, ryw, {"k": 3})])
        assert report.results[1].outputs == (5,)
        assert report.results[1].read_set == ()  # served from the write buffer


class TestMultiThreaded:
    def test_conflicting_increments_serialize(self):
        store = KVStore()
        executor = TwoPhaseLockingExecutor(store, num_threads=4)
        report = executor.run([increment(i, 1) for i in range(1, 21)])
        assert store.get(("row", 1)) == 20
        assert all(r.committed for r in report.results.values())

    def test_disjoint_txns_all_commit(self):
        store = KVStore()
        executor = TwoPhaseLockingExecutor(store, num_threads=8)
        report = executor.run([increment(i, i) for i in range(1, 33)])
        assert all(store.get(("row", i)) == 1 for i in range(1, 33))
        assert report.stats.committed == 32

    def test_traces_acyclic(self):
        store = KVStore({("acct", i): 100 for i in range(5)})
        executor = TwoPhaseLockingExecutor(store, num_threads=4)
        txns = [transfer(i, i % 5, (i + 1) % 5, 1) for i in range(1, 31)]
        report = executor.run(txns)
        assert report.traces.is_acyclic(report.results.keys())

    def test_serial_replay_matches_execution(self):
        """Replaying committed txns in topological order reproduces the DB."""
        initial = {("acct", i): 100 for i in range(4)}
        store = KVStore(dict(initial))
        executor = TwoPhaseLockingExecutor(store, num_threads=4)
        txns = [transfer(i, (i * 3) % 4, (i * 3 + 1) % 4, 2) for i in range(1, 25)]
        by_id = {t.txn_id: t for t in txns}
        report = executor.run(txns)

        replay = KVStore(dict(initial))
        order = report.traces.topological_order(report.results.keys())
        for txn_id in order:
            txn = by_id[txn_id]
            result = txn.program.execute(txn.params, replay.get)
            for key, value in result.writes:
                replay.put(key, value)
        assert replay.snapshot() == store.snapshot()

    def test_money_conserved_under_contention(self):
        initial = {("acct", i): 1000 for i in range(3)}
        store = KVStore(dict(initial))
        executor = TwoPhaseLockingExecutor(store, num_threads=6)
        txns = [transfer(i, i % 3, (i + 1) % 3, 7) for i in range(1, 40)]
        executor.run(txns)
        total = sum(store.get(("acct", i)) for i in range(3))
        assert total == 3000

    @given(st.integers(min_value=1, max_value=8), st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=15, deadline=None)
    def test_blind_writes_last_writer_wins_consistently(self, threads, base):
        store = KVStore()
        executor = TwoPhaseLockingExecutor(store, num_threads=threads)
        txns = [blind_write(i, 1, base + i) for i in range(1, 11)]
        report = executor.run(txns)
        final = store.get(("row", 1))
        # The final value must be the write of the last txn in serial order.
        order = report.traces.topological_order(report.results.keys())
        writers = [t for t in order]
        assert final == base + writers[-1]


class TestStats:
    def test_counts(self):
        store = KVStore()
        executor = TwoPhaseLockingExecutor(store, num_threads=1)
        report = executor.run([increment(1, 1), read_only(2, 1)])
        assert report.stats.num_txns == 2
        assert report.stats.reads == 2
        assert report.stats.writes == 1
        assert report.stats.committed == 2
