"""Unit tests for the WAL substrate: records, segments, checkpoints.

The crash-recovery *integration* story lives in
``tests/integration/test_crash_recovery.py``; here each durability layer is
exercised in isolation — framing survives every truncation point, scans
repair instead of raise, checkpoints are atomic and fall back past rot.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.db.wal import (
    SEGMENT_MAGIC,
    WriteAheadLog,
    checkpoint_path,
    decode_records,
    encode_record,
    list_checkpoints,
    list_segments,
    load_latest_checkpoint,
    mirror_path,
    scan_wal,
    segment_records,
    select_checkpoint,
    write_checkpoint,
)
from repro.errors import CheckpointError, WalError
from repro.obs.metrics import MetricsRegistry


def _record_bytes(seq=1, digest=0xDEADBEEF, payload=b"LCL1-fake-batch"):
    return encode_record(seq, digest, payload)


class TestRecordFraming:
    def test_round_trip(self):
        data = b"".join(
            encode_record(seq, 1000 + seq, b"batch-%d" % seq) for seq in (1, 2, 3)
        )
        records, intact, status = decode_records(data)
        assert status == "clean"
        assert intact == len(data)
        assert [r.seq for r in records] == [1, 2, 3]
        assert [r.digest for r in records] == [1001, 1002, 1003]
        assert [r.command_log for r in records] == [b"batch-1", b"batch-2", b"batch-3"]
        assert records[0].offset == 0
        assert records[1].offset == records[0].end_offset

    def test_zero_digest_encodes(self):
        records, _intact, status = decode_records(encode_record(1, 0, b"x"))
        assert status == "clean" and records[0].digest == 0

    def test_big_digest_round_trips(self):
        digest = (1 << 512) - 12345
        records, _intact, _status = decode_records(encode_record(7, digest, b""))
        assert records[0].digest == digest

    def test_every_truncation_is_torn_or_corrupt_never_raises(self):
        data = _record_bytes() + _record_bytes(seq=2)
        for cut in range(len(data)):
            records, intact, status = decode_records(data[:cut])
            assert status in ("torn", "corrupt", "clean")
            if cut < len(_record_bytes()):
                assert records == [] and intact == 0
            # intact always points at a record boundary
            assert intact in (0, len(_record_bytes()))

    def test_bit_flip_is_corrupt(self):
        data = bytearray(_record_bytes())
        data[12] ^= 0x01  # inside the CRC-covered payload
        records, intact, status = decode_records(bytes(data))
        assert status == "corrupt" and records == [] and intact == 0

    def test_absurd_length_field_is_corrupt_not_a_wait(self):
        data = bytearray(_record_bytes())
        data[0] = 0xFF  # length explodes past MAX_RECORD_BYTES
        _records, _intact, status = decode_records(bytes(data))
        assert status == "corrupt"


class TestRecordVersioning:
    def test_scalar_digest_is_a_version_1_record(self):
        records, _intact, status = decode_records(encode_record(1, 77, b"log"))
        assert status == "clean"
        record = records[0]
        assert record.version == 1
        assert record.digest == 77 and record.digest_vector == (77,)

    def test_length_1_vector_stays_version_1(self):
        from repro.core.api import DigestVector

        records, _intact, _status = decode_records(
            encode_record(1, DigestVector.single(77), b"log")
        )
        # bit-identical to the historical scalar encoding
        assert records[0].version == 1 and records[0].digest == 77
        assert encode_record(1, DigestVector.single(77), b"log") == encode_record(
            1, 77, b"log"
        )

    def test_multi_shard_vector_round_trips_as_version_2(self):
        from repro.core.api import DigestVector

        vector = DigestVector(((1 << 512) - 3, 0, 42))
        records, _intact, status = decode_records(
            encode_record(5, vector, b"batch-log")
        )
        assert status == "clean"
        record = records[0]
        assert record.version == 2
        assert record.digest_vector == vector.shards
        # the combined scalar matches the DigestVector fold
        assert record.digest == int(vector)
        assert record.command_log == b"batch-log"

    def test_plain_sequence_encodes_as_vector(self):
        records, _intact, _status = decode_records(encode_record(2, [3, 4], b""))
        assert records[0].version == 2 and records[0].digest_vector == (3, 4)

    def test_unknown_version_is_corrupt_not_guessed_at(self):
        import struct
        import zlib

        payload = struct.pack(">QB", 1, 99) + b"future-format"
        data = struct.pack(">II", len(payload), zlib.crc32(payload)) + payload
        records, intact, status = decode_records(data)
        assert status == "corrupt" and records == [] and intact == 0

    def test_zero_shard_vector_record_is_corrupt(self):
        import struct
        import zlib

        payload = struct.pack(">QB", 1, 2) + struct.pack(">H", 0)
        data = struct.pack(">II", len(payload), zlib.crc32(payload)) + payload
        _records, _intact, status = decode_records(data)
        assert status == "corrupt"


class TestWriteAheadLog:
    def test_append_and_scan_round_trip(self, tmp_path):
        registry = MetricsRegistry()
        wal = WriteAheadLog(str(tmp_path), registry=registry)
        for seq in (1, 2, 3):
            wal.append(seq, 100 + seq, b"batch-%d" % seq)
        wal.close()
        records, report = scan_wal(str(tmp_path), registry=registry)
        assert [r.seq for r in records] == [1, 2, 3]
        assert report.status == "clean" and report.truncations == 0
        assert registry.counter("wal.records").value == 3
        assert registry.counter("wal.fsyncs").value >= 3  # always policy

    def test_rotation_by_size(self, tmp_path):
        wal = WriteAheadLog(
            str(tmp_path), segment_max_bytes=64, registry=MetricsRegistry()
        )
        for seq in range(1, 6):
            wal.append(seq, seq, b"p" * 30)
        wal.close()
        assert len(list_segments(str(tmp_path))) > 1
        records, report = scan_wal(str(tmp_path))
        assert [r.seq for r in records] == [1, 2, 3, 4, 5]
        assert report.status == "clean"

    def test_reopen_never_appends_to_old_segment(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path), registry=MetricsRegistry())
        wal.append(1, 1, b"one")
        wal.close()
        first = list_segments(str(tmp_path))
        wal = WriteAheadLog(str(tmp_path), registry=MetricsRegistry())
        wal.append(2, 2, b"two")
        wal.close()
        segments = list_segments(str(tmp_path))
        assert len(segments) == 2 and segments[0] == first[0]
        records, _report = scan_wal(str(tmp_path))
        assert [r.seq for r in records] == [1, 2]

    def test_reset_retires_old_segments(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path), registry=MetricsRegistry())
        wal.append(1, 1, b"one")
        wal.reset()
        wal.append(2, 2, b"two")
        wal.close()
        assert len(list_segments(str(tmp_path))) == 1
        records, _report = scan_wal(str(tmp_path))
        assert [r.seq for r in records] == [2]

    def test_batch_policy_syncs_every_window(self, tmp_path):
        registry = MetricsRegistry()
        wal = WriteAheadLog(
            str(tmp_path), fsync="batch", sync_every=3, registry=registry
        )
        baseline = registry.counter("wal.fsyncs").value  # segment-open fsync
        for seq in range(1, 7):
            wal.append(seq, seq, b"x")
        assert registry.counter("wal.fsyncs").value == baseline + 2
        wal.close()

    def test_unknown_policy_rejected(self, tmp_path):
        with pytest.raises(WalError):
            WriteAheadLog(str(tmp_path), fsync="sometimes")


class TestScanRepair:
    def _write(self, tmp_path, count=3):
        wal = WriteAheadLog(str(tmp_path), registry=MetricsRegistry())
        for seq in range(1, count + 1):
            wal.append(seq, seq, b"batch-%d" % seq)
        wal.close()

    def test_torn_tail_is_truncated_in_place(self, tmp_path):
        self._write(tmp_path)
        registry = MetricsRegistry()
        path = list_segments(str(tmp_path))[0]
        records, _intact, _status = segment_records(path)
        with open(path, "r+b") as handle:
            handle.truncate(records[-1].offset + 5)  # mid-record
        kept, report = scan_wal(str(tmp_path), registry=registry)
        assert [r.seq for r in kept] == [1, 2]
        assert report.status == "torn" and report.truncations == 1
        assert registry.counter("wal.torn_tail_truncated").value == 1
        # repaired in place: a second scan is clean
        again, report2 = scan_wal(str(tmp_path), registry=registry)
        assert [r.seq for r in again] == [1, 2] and report2.status == "clean"

    def test_segments_past_damage_are_dropped(self, tmp_path):
        wal = WriteAheadLog(
            str(tmp_path), segment_max_bytes=64, registry=MetricsRegistry()
        )
        for seq in range(1, 6):
            wal.append(seq, seq, b"p" * 30)
        wal.close()
        segments = list_segments(str(tmp_path))
        assert len(segments) >= 3
        # corrupt the middle segment's payload
        victim = segments[1]
        with open(victim, "r+b") as handle:
            handle.seek(len(SEGMENT_MAGIC) + 10)
            byte = handle.read(1)
            handle.seek(len(SEGMENT_MAGIC) + 10)
            handle.write(bytes([byte[0] ^ 0x20]))
        kept, report = scan_wal(str(tmp_path))
        assert report.status == "corrupt"
        assert report.dropped_segments == len(segments) - 2
        assert [r.seq for r in kept] == list(range(1, kept[-1].seq + 1))
        assert set(list_segments(str(tmp_path))) <= set(segments[:2])

    def test_sequence_gap_truncates_even_with_valid_crcs(self, tmp_path):
        self._write(tmp_path, count=2)
        path = list_segments(str(tmp_path))[0]
        with open(path, "ab") as handle:
            handle.write(encode_record(9, 9, b"gap"))  # valid frame, wrong seq
        kept, report = scan_wal(str(tmp_path))
        assert [r.seq for r in kept] == [1, 2]
        assert report.status == "corrupt" and report.truncations == 1

    def test_mangled_magic_discards_the_file(self, tmp_path):
        self._write(tmp_path, count=1)
        path = list_segments(str(tmp_path))[0]
        with open(path, "r+b") as handle:
            handle.write(b"XXXX")
        kept, report = scan_wal(str(tmp_path))
        assert kept == [] and report.status == "corrupt"
        assert list_segments(str(tmp_path)) == []


def _write_ckpt(directory, seq=1, digest=42, rows=None, **overrides):
    kwargs = dict(
        seq=seq,
        digest=digest,
        rows=rows if rows is not None else {("acct", 0): 7},
        provider_state=({("acct", 0): 7}, 123456789, digest),
        next_txn_id=5,
        config={"cc": "dr"},
        group_modulus=0xC5,
        group_generator=0x04,
        durability={"fsync": "always"},
        digest_log_json=json.dumps(
            [
                {
                    "sequence": 0,
                    "digest": hex(digest),
                    "num_txns": 0,
                    "entry_hash": "00" * 32,
                }
            ]
        ),
    )
    kwargs.update(overrides)
    return write_checkpoint(str(directory), **kwargs)


class TestCheckpoints:
    def test_round_trip(self, tmp_path):
        path = _write_ckpt(tmp_path, seq=3, digest=99)
        loaded = load_latest_checkpoint(str(tmp_path))
        assert loaded.path == path
        assert loaded.seq == 3 and loaded.digest == 99
        assert loaded.rows == {("acct", 0): 7}
        assert loaded.provider_state == ({("acct", 0): 7}, 123456789, 99)
        assert loaded.next_txn_id == 5
        assert loaded.group_modulus == 0xC5 and loaded.group_generator == 0x04
        assert loaded.durability == {"fsync": "always"}

    def test_newest_wins(self, tmp_path):
        _write_ckpt(tmp_path, seq=1, digest=1)
        _write_ckpt(tmp_path, seq=4, digest=4)
        assert load_latest_checkpoint(str(tmp_path)).seq == 4

    def test_bit_rot_falls_back_to_mirror_then_older(self, tmp_path):
        def _rot(path):
            with open(path, "r+b") as handle:
                handle.seek(30)
                byte = handle.read(1)
                handle.seek(30)
                handle.write(bytes([byte[0] ^ 0x01]))

        _write_ckpt(tmp_path, seq=1, digest=1)
        newest = _write_ckpt(tmp_path, seq=2, digest=2)
        # A rotted primary is covered by its byte-identical mirror twin.
        _rot(newest)
        selection = select_checkpoint(str(tmp_path))
        assert selection.checkpoint.seq == 2
        assert selection.used_mirror
        assert selection.loaded_path == mirror_path(newest)
        assert selection.rejected and "checkpoint-0000000000000002.ckpt" in (
            selection.rejected[0]
        )
        # Both copies rotted: fall back to the older checkpoint pair.
        _rot(mirror_path(newest))
        selection = select_checkpoint(str(tmp_path))
        assert selection.checkpoint.seq == 1
        assert not selection.used_mirror
        assert len(selection.rejected) == 2
        assert load_latest_checkpoint(str(tmp_path)).seq == 1

    def test_no_valid_checkpoint_raises(self, tmp_path):
        with pytest.raises(CheckpointError):
            load_latest_checkpoint(str(tmp_path))
        newest = _write_ckpt(tmp_path, seq=1)
        for path in (newest, mirror_path(newest)):
            with open(path, "w") as handle:
                handle.write("not json at all")
        with pytest.raises(CheckpointError):
            load_latest_checkpoint(str(tmp_path))

    def test_inconsistent_provider_digest_rejected(self, tmp_path):
        _write_ckpt(
            tmp_path, digest=5, provider_state=({("acct", 0): 7}, 1, 6)
        )
        with pytest.raises(CheckpointError):
            load_latest_checkpoint(str(tmp_path))

    def test_retention_window(self, tmp_path):
        for seq in range(1, 6):
            _write_ckpt(tmp_path, seq=seq, keep=2)
        kept = list_checkpoints(str(tmp_path))
        assert kept == [
            checkpoint_path(str(tmp_path), 5),
            checkpoint_path(str(tmp_path), 4),
        ]

    def test_stale_temps_are_garbage_collected(self, tmp_path):
        stale = os.path.join(str(tmp_path), "checkpoint-0000000000000009.ckpt.tmp")
        with open(stale, "w") as handle:
            handle.write("{}")
        _write_ckpt(tmp_path, seq=1)
        assert not os.path.exists(stale)
        # loaders never consider temp files
        assert load_latest_checkpoint(str(tmp_path)).seq == 1
