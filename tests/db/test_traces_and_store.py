"""Tests for runtime traces, the KV store, and the Database facade."""

from __future__ import annotations

import pytest

from repro.db.database import Database
from repro.db.kvstore import KVStore
from repro.db.traces import RuntimeTraces
from repro.errors import ConcurrencyError

from .helpers import increment


class TestKVStore:
    def test_absent_key_reads_zero(self):
        assert KVStore().get(("missing",)) == 0

    def test_put_get_roundtrip(self):
        store = KVStore()
        store.put(("k",), 42)
        assert store.get(("k",)) == 42
        assert ("k",) in store

    def test_snapshot_is_isolated(self):
        store = KVStore({("k",): 1})
        snap = store.snapshot()
        store.put(("k",), 2)
        assert snap[("k",)] == 1

    def test_load_merges(self):
        store = KVStore({("a",): 1})
        store.load({("b",): 2})
        assert len(store) == 2


class TestRuntimeTraces:
    def test_self_edges_dropped(self):
        traces = RuntimeTraces()
        traces.add_edge(1, 1, "ww")
        traces.add_edge(None, 1, "wr")
        assert traces.edges == []

    def test_topological_order_respects_edges(self):
        traces = RuntimeTraces()
        traces.add_edge(3, 1, "wr")
        traces.add_edge(1, 2, "ww")
        order = traces.topological_order([1, 2, 3])
        assert order.index(3) < order.index(1) < order.index(2)

    def test_topological_order_deterministic_tiebreak(self):
        traces = RuntimeTraces()
        assert traces.topological_order([3, 1, 2]) == [1, 2, 3]

    def test_cycle_detected(self):
        traces = RuntimeTraces()
        traces.add_edge(1, 2, "wr")
        traces.add_edge(2, 1, "rw")
        assert not traces.is_acyclic([1, 2])
        with pytest.raises(ConcurrencyError):
            traces.topological_order([1, 2])

    def test_edges_to_unknown_txns_ignored(self):
        traces = RuntimeTraces()
        traces.add_edge(9, 1, "wr")
        assert traces.topological_order([1]) == [1]


class TestDatabase:
    def test_dr_facade(self):
        db = Database(cc="dr", processing_batch_size=4)
        report = db.run([increment(i, 1) for i in range(1, 4)])
        assert db.get(("row", 1)) == 3
        assert report.stats.committed == 3

    def test_2pl_facade(self):
        db = Database(cc="2pl", num_threads=2)
        report = db.run([increment(i, 1) for i in range(1, 4)])
        assert db.get(("row", 1)) == 3
        assert report.stats.committed == 3

    def test_unknown_cc_rejected(self):
        with pytest.raises(ConcurrencyError):
            Database(cc="occ")

    def test_initial_contents(self):
        db = Database(initial={("row", 1): 10}, cc="dr")
        assert db.get(("row", 1)) == 10
        assert len(db) == 1
