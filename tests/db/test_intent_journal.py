"""The cross-shard intent journal: framing, repair, pending detection.

Unit coverage for :mod:`repro.db.wal.intents` — the coordinator-side 2PC
decision log.  The integration story (how ``ShardedSession`` drives it)
lives in ``tests/core/test_xshard_atomic.py``.
"""

from __future__ import annotations

import os

import pytest

from repro.db.wal import IntentJournal, IntentTxn, encode_frame
from repro.db.wal.intents import JOURNAL_MAGIC
from repro.errors import WalError


def _txn(txn_id=1, shards=(0, 1)):
    return IntentTxn(
        txn_id=txn_id,
        user="alice",
        program="transfer",
        params={"src": 0, "dst": 1, "amount": 5, "__w0": 95, "__w1": 105},
        shards=tuple(shards),
    )


def _journal(tmp_path, **kwargs) -> tuple[IntentJournal, str]:
    path = str(tmp_path / "xshard-intents.log")
    kwargs.setdefault("num_shards", 2)
    kwargs.setdefault("fsync", False)
    return IntentJournal(path, **kwargs), path


class TestRoundTrip:
    def test_intent_then_commit(self, tmp_path):
        journal, path = _journal(tmp_path)
        round_id = journal.begin_round()
        journal.log_intent(
            round_id, (_txn(),), (0, 1), {0: 3, 1: 7}, {0: 0xAB, 1: 0xCD}
        )
        assert journal.pending_rounds == (round_id,)
        journal.log_resolution(round_id, "committed")
        assert journal.pending_rounds == ()
        journal.close()

        records, report = IntentJournal.scan(path, repair=False)
        assert report.records == 1 and report.pending == 0
        (record,) = records
        assert record.round_id == round_id
        assert record.state == "committed"
        assert record.num_shards == 2
        assert record.participants == (0, 1)
        assert record.pre_seqs == {0: 3, 1: 7}
        assert record.pre_digests == {0: 0xAB, 1: 0xCD}
        assert record.txns == (_txn(),)

    def test_abort_carries_reason(self, tmp_path):
        journal, path = _journal(tmp_path)
        round_id = journal.begin_round()
        journal.log_intent(round_id, (_txn(),), (0, 1), {0: 0, 1: 0}, {0: 1, 1: 2})
        journal.log_resolution(round_id, "aborted", "shard 1 rejected")
        journal.close()
        records, _ = IntentJournal.scan(path)
        assert records[0].state == "aborted"
        assert records[0].reason == "shard 1 rejected"

    def test_unresolved_intent_is_pending(self, tmp_path):
        journal, path = _journal(tmp_path)
        round_id = journal.begin_round()
        journal.log_intent(round_id, (_txn(),), (0, 1), {0: 0, 1: 0}, {0: 1, 1: 2})
        journal.close()
        records, report = IntentJournal.scan(path)
        assert report.pending == 1
        assert records[0].state == "pending"

    def test_round_ids_continue_across_reopen(self, tmp_path):
        journal, path = _journal(tmp_path)
        first = journal.begin_round()
        journal.log_intent(first, (_txn(),), (0, 1), {0: 0, 1: 0}, {0: 1, 1: 2})
        journal.close()
        reopened = IntentJournal(path, num_shards=2, fsync=False)
        assert reopened.pending_rounds == (first,)
        assert reopened.begin_round() == first + 1
        reopened.close()

    def test_rejects_bad_inputs(self, tmp_path):
        with pytest.raises(WalError):
            IntentJournal(str(tmp_path / "j.log"), num_shards=0)
        journal, _ = _journal(tmp_path)
        with pytest.raises(WalError):
            journal.log_resolution(0, "bogus-state")
        journal.close()
        with pytest.raises(WalError):
            journal.log_resolution(0, "committed")  # closed


class TestDamage:
    def test_torn_tail_is_truncated_on_reopen(self, tmp_path):
        journal, path = _journal(tmp_path)
        round_id = journal.begin_round()
        journal.log_intent(round_id, (_txn(),), (0, 1), {0: 0, 1: 0}, {0: 1, 1: 2})
        journal.close()
        clean_size = os.path.getsize(path)
        with open(path, "ab") as handle:
            handle.write(encode_frame(b'{"type": "commit"')[:9])  # torn frame
        assert os.path.getsize(path) > clean_size

        reopened = IntentJournal(path, num_shards=2, fsync=False)
        assert os.path.getsize(path) == clean_size
        assert reopened.pending_rounds == (round_id,)
        # the repaired journal appends cleanly past the truncation point
        reopened.log_resolution(round_id, "committed")
        reopened.close()
        records, report = IntentJournal.scan(path)
        assert report.status == "clean"
        assert [r.state for r in records] == ["committed"]

    def test_non_json_frame_truncates_as_corrupt(self, tmp_path):
        journal, path = _journal(tmp_path)
        round_id = journal.begin_round()
        journal.log_intent(round_id, (_txn(),), (0, 1), {0: 0, 1: 0}, {0: 1, 1: 2})
        journal.close()
        with open(path, "ab") as handle:
            handle.write(encode_frame(b"\xff\xfe not json"))
        records, report = IntentJournal.scan(path, repair=True)
        assert report.status == "corrupt" and report.truncated_bytes > 0
        assert [r.round_id for r in records] == [round_id]

    def test_resolution_without_intent_is_ignored(self, tmp_path):
        journal, path = _journal(tmp_path)
        journal.close()
        with open(path, "ab") as handle:
            handle.write(
                encode_frame(b'{"type": "commit", "round": 99, "reason": ""}')
            )
        records, report = IntentJournal.scan(path)
        assert records == [] and report.records == 0

    def test_missing_magic_discards_file(self, tmp_path):
        path = str(tmp_path / "foreign.log")
        with open(path, "wb") as handle:
            handle.write(b"not an intent journal at all")
        records, report = IntentJournal.scan(path, repair=True)
        assert records == [] and report.status == "corrupt"
        assert not os.path.exists(path)

    def test_magic_survives_empty_journal(self, tmp_path):
        journal, path = _journal(tmp_path)
        journal.close()
        with open(path, "rb") as handle:
            assert handle.read() == JOURNAL_MAGIC
        records, report = IntentJournal.scan(path)
        assert records == [] and report.status == "clean"
