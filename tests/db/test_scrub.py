"""Scrub & repair: finding at-rest rot while redundancy still exists.

The headline property: a rotted checkpoint primary is rebuilt
byte-for-byte from its mirror twin by one ``scrub_directory`` pass — the
damage is *healed*, not merely survived.  Around it: doubly-rotted pairs
are quarantined so loaders fall back cleanly, segment/intent damage is
reported but left for recovery (truncation needs the cross-segment
chain), sharded layouts are walked shard by shard, ``repair=False`` is a
pure audit, and every pass lands on the ``scrub.*`` counters.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.db.scrub import BackgroundScrubber, scrub_directory
from repro.db.wal import (
    INTENT_JOURNAL_NAME,
    IntentJournal,
    WriteAheadLog,
    list_segments,
    load_latest_checkpoint,
    mirror_path,
    select_checkpoint,
    write_checkpoint,
)
from repro.db.fsio import rot_file
from repro.faults import CheckpointRot
from repro.obs.metrics import MetricsRegistry


def _write_ckpt(directory, seq=1, digest=42, **overrides):
    kwargs = dict(
        seq=seq,
        digest=digest,
        rows={("acct", 0): 7},
        provider_state=({("acct", 0): 7}, 123456789, digest),
        next_txn_id=5,
        config={"cc": "dr"},
        group_modulus=0xC5,
        group_generator=0x04,
        durability={"fsync": "always"},
        digest_log_json=json.dumps(
            [
                {
                    "sequence": 0,
                    "digest": hex(digest),
                    "num_txns": 0,
                    "entry_hash": "00" * 32,
                }
            ]
        ),
    )
    kwargs.update(overrides)
    return write_checkpoint(str(directory), **kwargs)


def _read(path):
    with open(path, "rb") as handle:
        return handle.read()


class TestCheckpointRepair:
    def test_rotted_primary_is_rebuilt_from_its_mirror(self, tmp_path):
        _write_ckpt(tmp_path, seq=3, digest=9)
        rotted = CheckpointRot().apply(str(tmp_path))
        # Before the scrub, loading survives only by falling back.
        assert select_checkpoint(str(tmp_path)).used_mirror

        registry = MetricsRegistry()
        report = scrub_directory(str(tmp_path), registry=registry)

        assert report.ok and report.repaired == 1
        assert "healed" in report.summary()
        (finding,) = report.findings
        assert finding.kind == "checkpoint" and finding.action == "repaired"
        assert finding.path == rotted
        assert _read(rotted) == _read(mirror_path(rotted))
        # The primary is whole again: no fallback, nothing rejected.
        selection = select_checkpoint(str(tmp_path))
        assert not selection.used_mirror and not selection.rejected
        assert selection.checkpoint.seq == 3
        assert registry.counter("storage.mirror_repairs").value == 1
        # A second pass finds nothing left to do.
        assert not scrub_directory(str(tmp_path), registry=registry).findings

    def test_rotted_mirror_is_rebuilt_from_its_primary(self, tmp_path):
        primary = _write_ckpt(tmp_path, seq=1)
        rot_file(mirror_path(primary), 97, 0x20)

        report = scrub_directory(str(tmp_path))

        assert report.ok and report.repaired == 1
        (finding,) = report.findings
        assert finding.kind == "mirror" and finding.action == "repaired"
        assert _read(primary) == _read(mirror_path(primary))

    def test_doubly_rotted_pair_is_quarantined(self, tmp_path):
        _write_ckpt(tmp_path, seq=1, digest=1)
        newest = _write_ckpt(tmp_path, seq=2, digest=2)
        rot_file(newest, 97, 0x20)
        rot_file(mirror_path(newest), 97, 0x20)

        registry = MetricsRegistry()
        report = scrub_directory(str(tmp_path), registry=registry)

        assert report.ok and report.quarantined == 2
        assert {f.action for f in report.findings} == {"quarantined"}
        assert not os.path.exists(newest)
        assert os.path.exists(newest + ".quarantined")
        assert registry.counter("scrub.quarantined").value == 2
        # Loaders now fall back to the older pair without tripping on
        # known-bad bytes (and without needing the mirror).
        selection = select_checkpoint(str(tmp_path))
        assert selection.checkpoint.seq == 1
        assert not selection.used_mirror and not selection.rejected

    def test_audit_only_reports_and_touches_nothing(self, tmp_path):
        _write_ckpt(tmp_path, seq=1)
        rotted = CheckpointRot().apply(str(tmp_path))
        before = _read(rotted)

        report = scrub_directory(str(tmp_path), repair=False)

        assert not report.ok and report.repaired == 0
        (finding,) = report.findings
        assert finding.action == "reported"
        assert _read(rotted) == before  # a pure audit
        assert select_checkpoint(str(tmp_path)).used_mirror


class TestReportOnlyArtifacts:
    def test_torn_segment_is_reported_for_recovery_not_repaired(self, tmp_path):
        registry = MetricsRegistry()
        wal = WriteAheadLog(str(tmp_path), fsync="always", registry=registry)
        for seq in (1, 2):
            wal.append(seq, seq * 11, b"payload-%d" % seq)
        wal.close()
        (segment,) = list_segments(str(tmp_path))
        torn = _read(segment)[:-3]
        with open(segment, "wb") as handle:
            handle.write(torn)

        report = scrub_directory(str(tmp_path), registry=registry)

        assert not report.ok
        (finding,) = report.findings
        assert finding.kind == "segment" and finding.action == "reported"
        assert "recovery will truncate" in finding.problem
        assert _read(segment) == torn  # scrub never rewrites segments

    def test_intent_journal_tail_is_reported(self, tmp_path):
        path = os.path.join(str(tmp_path), INTENT_JOURNAL_NAME)
        journal = IntentJournal(path, num_shards=2)
        round_id = journal.begin_round()
        journal.log_resolution(round_id, "committed")
        journal.close()
        with open(path, "ab") as handle:
            handle.write(b"\xff" * 11)

        report = scrub_directory(str(tmp_path))

        assert not report.ok
        (finding,) = report.findings
        assert finding.kind == "intents" and finding.action == "reported"

    def test_clean_directory_counts_what_it_verified(self, tmp_path):
        _write_ckpt(tmp_path, seq=1)
        wal = WriteAheadLog(str(tmp_path), fsync="always")
        wal.append(1, 11, b"payload")
        wal.close()

        registry = MetricsRegistry()
        report = scrub_directory(str(tmp_path), registry=registry)

        assert report.ok and not report.findings
        assert "clean" in report.summary()
        assert report.checkpoints_verified == 1
        assert report.files_scanned == 3  # primary + mirror + segment
        assert report.records_verified >= 1
        assert registry.counter("scrub.runs").value == 1
        assert registry.counter("scrub.files_scanned").value == 3
        assert registry.counter("scrub.damage_found").value == 0


class TestShardedLayout:
    def test_shard_directories_are_walked(self, tmp_path):
        for shard in (0, 1):
            shard_dir = tmp_path / f"shard-{shard:02d}"
            shard_dir.mkdir()
            _write_ckpt(shard_dir, seq=1, digest=shard + 1)
        CheckpointRot().apply(str(tmp_path / "shard-01"))
        journal = IntentJournal(
            os.path.join(str(tmp_path), INTENT_JOURNAL_NAME), num_shards=2
        )
        journal.close()

        report = scrub_directory(str(tmp_path))

        assert len(report.directories) == 3  # parent + both shards
        assert report.ok and report.repaired == 1
        (finding,) = report.findings
        assert "shard-01" in finding.path
        assert load_latest_checkpoint(str(tmp_path / "shard-01")).digest == 2


class TestBackgroundScrubber:
    def test_pass_repairs_older_pairs_but_spares_the_newest(self, tmp_path):
        older = _write_ckpt(tmp_path, seq=1, digest=1, keep=5)
        newest = _write_ckpt(tmp_path, seq=2, digest=2, keep=5)
        rot_file(older, 97, 0x20)
        rot_file(newest, 97, 0x20)  # may be mid-write: must be left alone
        newest_before = _read(newest)

        registry = MetricsRegistry()
        scrubber = BackgroundScrubber(
            str(tmp_path), interval=3600.0, registry=registry
        )
        report = scrubber.scrub_now()

        assert scrubber.passes == 1 and scrubber.last_report is report
        assert report.repaired == 1
        (finding,) = report.findings
        assert finding.path == older
        assert _read(newest) == newest_before

    def test_skip_fn_shields_the_active_segment(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path), fsync="always")
        wal.append(1, 11, b"live")
        active = wal.active_segment  # open: a scrub must not judge its tail

        scrubber = BackgroundScrubber(
            str(tmp_path), interval=3600.0, skip_fn=lambda: (active,)
        )
        report = scrubber.scrub_now()
        wal.close()

        assert report.ok and not report.findings
        assert report.files_scanned == 0
