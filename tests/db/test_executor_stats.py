"""Tests for execution statistics and schedule-unit accessors."""

from __future__ import annotations

from repro.db.database import Database
from repro.db.executor import ExecutionStats, ScheduleUnit

from .helpers import increment, read_only


class TestExecutionStats:
    def test_mean_batch_size(self):
        stats = ExecutionStats(batch_sizes=[4, 6, 2])
        assert stats.mean_batch_size == 4.0

    def test_mean_batch_size_empty(self):
        assert ExecutionStats().mean_batch_size == 0.0

    def test_dr_stats_populated(self):
        db = Database(cc="dr", processing_batch_size=4)
        report = db.run([increment(i, i % 2) for i in range(1, 9)])
        stats = report.stats
        assert stats.num_txns == 8
        assert stats.committed == 8
        assert stats.rounds == len(report.schedule)
        assert stats.reads == 8
        assert stats.writes == 8
        assert sum(stats.batch_sizes) == 8


class TestScheduleUnit:
    def test_key_accessors(self):
        unit = ScheduleUnit(
            txn_ids=(1, 2),
            reads=((("a",), 1), (("b",), 2)),
            writes=((("a",), 9),),
        )
        assert unit.read_keys == (("a",), ("b",))
        assert unit.write_keys == (("a",),)

    def test_committed_ids(self):
        db = Database(cc="dr", processing_batch_size=8)
        report = db.run([read_only(1, 0), increment(2, 0)])
        assert sorted(report.committed_ids()) == [1, 2]
