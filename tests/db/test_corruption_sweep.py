"""Exhaustive single-byte corruption sweep over ``scan_wal(repair=True)``.

The recovery scan promises that arbitrary damage becomes *a smaller log
plus a loud report, never an exception* — and that what survives is
exactly a contiguous, byte-faithful prefix of the acknowledged history.
The only honest way to believe a promise like that is to flip every byte
and check.  Two flavors:

- an exhaustive sweep over **every byte position** of a small two-segment
  log (``diskfault`` marked: hundreds of scans, its own CI job);
- a hypothesis sweep drawing (position, xor-mask) pairs, fast enough for
  tier-1.

Both assert the same four invariants after corrupting one byte:

1. ``scan_wal(repair=True)`` returns instead of raising;
2. the recovered seqs are a contiguous run of the original — and when
   that run does not start at seq 1 (the head segment's magic was hit,
   orphaning a suffix), the report is loud about the damage, because the
   checkpoint-anchored replay upstairs is what decides if the gap
   matters;
3. every recovered record is byte-identical to what was appended;
4. the repair converges: a second scan is clean, returns the same
   records, and the directory accepts new appends that chain on.
"""

from __future__ import annotations

import os
import shutil

import pytest

from repro.db.wal import WriteAheadLog, scan_wal
from repro.obs.metrics import MetricsRegistry

PAYLOADS = {
    1: b"alpha" * 5,
    2: b"bravo" * 7,
    3: b"charlie" * 4,
    4: b"delta" * 6,
}


@pytest.fixture(scope="module")
def pristine_log(tmp_path_factory):
    """A sealed two-segment log plus the byte count to sweep."""
    directory = tmp_path_factory.mktemp("pristine")
    wal = WriteAheadLog(
        str(directory), fsync="always", segment_max_bytes=96
    )
    for seq, payload in PAYLOADS.items():
        wal.append(seq, seq * 1001, payload)
    wal.close()
    total = sum(
        os.path.getsize(os.path.join(directory, name))
        for name in os.listdir(directory)
    )
    return str(directory), total


def _flip_byte(directory: str, position: int, mask: int) -> None:
    """XOR *mask* into global byte *position* of the segment stream."""
    for name in sorted(os.listdir(directory)):
        path = os.path.join(directory, name)
        size = os.path.getsize(path)
        if position < size:
            with open(path, "r+b") as handle:
                handle.seek(position)
                byte = handle.read(1)[0]
                handle.seek(position)
                handle.write(bytes([byte ^ mask]))
            return
        position -= size
    raise AssertionError("position beyond the log")


def _check_invariants(directory: str) -> None:
    registry = MetricsRegistry()
    records, report = scan_wal(directory, registry=registry, repair=True)
    seqs = [r.seq for r in records]
    assert seqs == list(range(seqs[0], seqs[0] + len(seqs))) if seqs else True
    if seqs and seqs[0] != 1:
        # An orphaned suffix survives only with a loud report.
        assert report.status != "clean"
    for record in records:
        assert record.command_log == PAYLOADS[record.seq]
        assert record.digest == record.seq * 1001
    again, clean = scan_wal(directory, registry=registry, repair=True)
    assert [r.seq for r in again] == seqs
    assert clean.status == "clean"
    assert clean.truncations == 0 and clean.dropped_segments == 0
    # The healed directory is appendable and the chain continues.
    wal = WriteAheadLog(str(directory), fsync="always")
    next_seq = (seqs[-1] if seqs else 0) + 1
    wal.append(next_seq, next_seq * 1001, b"resumed")
    wal.close()
    resumed, _ = scan_wal(directory, registry=registry, repair=True)
    assert [r.seq for r in resumed] == seqs + [next_seq]


@pytest.mark.diskfault
def test_every_single_byte_position(pristine_log, tmp_path):
    source, total = pristine_log
    assert total > 150  # the sweep really covers two segments
    for position in range(total):
        victim = str(tmp_path / f"pos-{position:04d}")
        shutil.copytree(source, victim)
        _flip_byte(victim, position, 0x40)
        _check_invariants(victim)
        shutil.rmtree(victim)


def test_hypothesis_sweep(pristine_log, tmp_path):
    hypothesis = pytest.importorskip("hypothesis")
    st = pytest.importorskip("hypothesis.strategies")
    source, total = pristine_log
    counter = iter(range(10**6))

    @hypothesis.given(
        position=st.integers(min_value=0, max_value=total - 1),
        mask=st.integers(min_value=1, max_value=255),
    )
    @hypothesis.settings(
        max_examples=40,
        deadline=None,
        database=None,
    )
    def sweep(position, mask):
        victim = str(tmp_path / f"case-{next(counter)}")
        shutil.copytree(source, victim)
        _flip_byte(victim, position, mask)
        _check_invariants(victim)
        shutil.rmtree(victim)

    sweep()
