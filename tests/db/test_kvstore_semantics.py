"""KVStore state-transfer semantics and the durable-checkpoint round trip.

``snapshot`` / ``load`` / ``restore`` are the primitives every recovery
path (rollback, resync, WAL checkpointing) is built on, so their exact
semantics — merge vs replace, aliasing — get pinned here, together with
the end-to-end guarantee that a written-then-loaded checkpoint reproduces
the server image bit for bit, authenticated-dictionary state included.
"""

from __future__ import annotations

import json

from repro.core.checkpoint import DigestLog
from repro.core.memory_integrity import MemoryIntegrityProvider
from repro.db.kvstore import INITIAL_VALUE, KVStore
from repro.db.wal import load_latest_checkpoint, write_checkpoint


class TestSnapshotLoadRestore:
    def test_snapshot_is_a_detached_copy(self):
        store = KVStore({("a",): 1})
        snap = store.snapshot()
        snap[("a",)] = 99
        snap[("b",)] = 2
        assert store.get(("a",)) == 1
        assert ("b",) not in store

    def test_mutation_after_snapshot_does_not_leak_back(self):
        store = KVStore({("a",): 1})
        snap = store.snapshot()
        store.put(("a",), 50)
        assert snap == {("a",): 1}

    def test_load_merges_over_existing_keys(self):
        store = KVStore({("a",): 1, ("b",): 2})
        store.load({("b",): 20, ("c",): 30})
        assert store.snapshot() == {("a",): 1, ("b",): 20, ("c",): 30}

    def test_restore_replaces_and_removes_inserts(self):
        store = KVStore({("a",): 1})
        snap = store.snapshot()
        store.put(("a",), 10)
        store.put(("inserted",), 5)
        store.restore(snap)
        # rollback semantics: the insert is gone, not merged over
        assert ("inserted",) not in store
        assert store.snapshot() == {("a",): 1}

    def test_restore_does_not_alias_its_argument(self):
        store = KVStore()
        contents = {("a",): 1}
        store.restore(contents)
        contents[("a",)] = 99
        assert store.get(("a",)) == 1

    def test_absent_keys_read_the_agreed_initial_value(self):
        assert KVStore().get(("never", "written")) == INITIAL_VALUE


class TestCheckpointRoundTrip:
    def test_store_and_provider_state_survive_a_checkpoint(self, group, tmp_path):
        rows = {("acct", i): 100 + i for i in range(4)}
        provider = MemoryIntegrityProvider(group, initial=rows, prime_bits=64)
        digest = provider.digest
        log = DigestLog(digest)

        write_checkpoint(
            str(tmp_path),
            seq=7,
            digest=digest,
            rows=rows,
            provider_state=provider.state(),
            next_txn_id=42,
            config={"cc": "dr", "prime_bits": 64},
            group_modulus=group.modulus,
            group_generator=group.generator,
            durability={"fsync": "always"},
            digest_log_json=log.to_json(),
        )
        loaded = load_latest_checkpoint(str(tmp_path))

        assert loaded.rows == rows
        assert loaded.digest == digest
        assert loaded.next_txn_id == 42

        # The journaled provider state restores to an identical AD: same
        # digest, and certificates minted by the restored provider verify.
        restored = MemoryIntegrityProvider(group, prime_bits=64)
        restored.restore(loaded.provider_state)
        assert restored.digest == digest
        assert provider.state() == restored.state()

        # The digest log rode along intact, chain hashes included.
        replayed_log = DigestLog.from_json(loaded.digest_log_json)
        assert replayed_log.latest_digest == digest
        assert replayed_log.entries() == log.entries()

    def test_checkpoint_rows_are_canonically_ordered(self, group, tmp_path):
        """Two dicts with different insertion order produce identical files."""
        rows_a = {("b",): 2, ("a",): 1}
        rows_b = {("a",): 1, ("b",): 2}
        provider = MemoryIntegrityProvider(group, initial=rows_a, prime_bits=64)
        common = dict(
            seq=1,
            digest=provider.digest,
            provider_state=provider.state(),
            next_txn_id=1,
            config={},
            group_modulus=group.modulus,
            group_generator=group.generator,
            durability={},
            digest_log_json=DigestLog(provider.digest).to_json(),
        )
        (tmp_path / "a").mkdir()
        (tmp_path / "b").mkdir()
        path_a = write_checkpoint(str(tmp_path / "a"), rows=rows_a, **common)
        path_b = write_checkpoint(str(tmp_path / "b"), rows=rows_b, **common)
        body_a = json.load(open(path_a))
        body_b = json.load(open(path_b))
        assert body_a["rows"] == body_b["rows"]
        assert body_a["checksum"] == body_b["checksum"]
