"""The hostile disk: FaultyFileSystem directives and fsyncgate-correct WAL.

Covers the fsio layer in isolation (each directive does exactly what the
table in :mod:`repro.db.fsio` promises) and the WriteAheadLog's failure
semantics on top of it: write errors are absorbed by a rescue rotation
(nothing was acknowledged, so the honest retry is a whole-record rewrite
in a fresh segment), failed fsyncs poison the log permanently (the
fsyncgate lesson — never retry-and-pretend), and a session propagates the
typed :class:`~repro.errors.DurabilityError` before any ticket resolves.
"""

from __future__ import annotations

import errno
import os

import pytest

from repro.core import DurabilityConfig, LitmusConfig, LitmusSession
from repro.db.fsio import OS_FILESYSTEM, FaultyFileSystem, rot_file
from repro.db.wal import WriteAheadLog, list_segments, scan_wal
from repro.errors import DurabilityError
from repro.faults import (
    DiskFull,
    FaultPlan,
    FsyncFailure,
    RenameFailure,
    ShortWrite,
    WriteError,
)
from repro.obs.metrics import MetricsRegistry

from ..integration.test_fault_recovery import CONFIG, NUM_ACCOUNTS, TRANSFER


def _faulty(tmp_path, *injectors, seed=7):
    plan = FaultPlan(*injectors, seed=seed)
    plan.bind_registry(MetricsRegistry())
    return FaultyFileSystem(plan, OS_FILESYSTEM), plan


class TestDirectives:
    def test_write_error_reaches_the_caller_untouched(self, tmp_path):
        fs, _plan = _faulty(tmp_path, WriteError(path_contains=".seg"))
        path = os.path.join(str(tmp_path), "wal-00000001.seg")
        with fs.open(path, "xb") as handle:
            with pytest.raises(OSError) as excinfo:
                handle.write(b"payload")
        assert excinfo.value.errno == errno.EIO
        assert os.path.getsize(path) == 0  # no bytes reached the file

    def test_enospc_is_a_distinct_errno(self, tmp_path):
        fs, _plan = _faulty(tmp_path, DiskFull())
        with fs.open(os.path.join(str(tmp_path), "a.seg"), "xb") as handle:
            with pytest.raises(OSError) as excinfo:
                handle.write(b"payload")
        assert excinfo.value.errno == errno.ENOSPC

    def test_short_write_persists_a_strict_prefix(self, tmp_path):
        fs, _plan = _faulty(tmp_path, ShortWrite(fraction=0.5))
        path = os.path.join(str(tmp_path), "a.seg")
        with fs.open(path, "xb") as handle:
            with pytest.raises(OSError):
                handle.write(b"0123456789")
        landed = open(path, "rb").read()
        assert 0 < len(landed) < 10
        assert b"0123456789".startswith(landed)

    def test_fsync_failure_drops_the_unsynced_tail(self, tmp_path):
        fs, _plan = _faulty(tmp_path, FsyncFailure())
        path = os.path.join(str(tmp_path), "a.seg")
        handle = fs.open(path, "xb")
        handle.write(b"durable")
        # No injected fault on a plain fsync-after-write... the injector
        # fires on the *first* fsync, so this one fails and the tail is
        # physically gone — the pessimistic page-cache-loss model.
        with pytest.raises(OSError):
            handle.fsync()
        handle.close()
        assert open(path, "rb").read() == b""

    def test_fsync_failure_spares_already_synced_bytes(self, tmp_path):
        # Fire on the second fsync only: bytes covered by the first
        # (successful) fsync must survive the injected failure.
        injector = FsyncFailure()
        fs, plan = _faulty(tmp_path, injector)
        plan.injectors.clear()
        path = os.path.join(str(tmp_path), "a.seg")
        handle = fs.open(path, "xb")
        handle.write(b"durable|")
        handle.fsync()
        plan.injectors.append(injector)
        handle.write(b"doomed")
        with pytest.raises(OSError):
            handle.fsync()
        handle.close()
        assert open(path, "rb").read() == b"durable|"

    def test_rename_failure_leaves_the_target_untouched(self, tmp_path):
        fs, _plan = _faulty(tmp_path, RenameFailure(path_contains=".ckpt"))
        src = os.path.join(str(tmp_path), "new.ckpt.tmp")
        dst = os.path.join(str(tmp_path), "old.ckpt")
        open(src, "w").write("new")
        open(dst, "w").write("old")
        with pytest.raises(OSError):
            fs.replace(src, dst)
        assert open(dst).read() == "old"
        assert os.path.exists(src)

    def test_rot_on_write_is_silent_and_seeded(self, tmp_path):
        from repro.faults import RotOnWrite

        payload = bytes(range(64))
        written = []
        for _ in range(2):
            fs, _plan = _faulty(tmp_path, RotOnWrite(), seed=13)
            path = os.path.join(str(tmp_path), f"r{len(written)}.seg")
            with fs.open(path, "xb") as handle:
                handle.write(payload)  # no exception: rot is silent
            written.append(open(path, "rb").read())
        assert written[0] != payload  # one bit flipped
        assert written[0] == written[1]  # deterministically so


class TestRotFile:
    def test_position_wraps_modulo_size(self, tmp_path):
        path = os.path.join(str(tmp_path), "f")
        open(path, "wb").write(b"abcd")
        rot_file(path, 5, mask=0x01)  # 5 % 4 == 1
        assert open(path, "rb").read() == b"a" + bytes([ord("b") ^ 1]) + b"cd"

    def test_zero_mask_rejected(self, tmp_path):
        path = os.path.join(str(tmp_path), "f")
        open(path, "wb").write(b"abcd")
        with pytest.raises(ValueError):
            rot_file(path, 0, mask=0x100)


class TestWalRescueRotation:
    def _wal(self, tmp_path, *injectors, fsync="always"):
        # Arm the injectors only after construction: the fault should hit
        # an append, not the magic header of the very first segment.
        plan = FaultPlan(seed=3)
        registry = MetricsRegistry()
        plan.bind_registry(registry)
        wal = WriteAheadLog(
            str(tmp_path),
            fsync=fsync,
            registry=registry,
            fs=FaultyFileSystem(plan, OS_FILESYSTEM),
        )
        plan.injectors.extend(injectors)
        return wal, registry

    def test_eio_write_is_absorbed_by_a_rescue_rotation(self, tmp_path):
        wal, registry = self._wal(
            tmp_path, WriteError(path_contains="wal-")
        )
        for seq in (1, 2, 3):
            wal.append(seq, seq * 11, b"payload-%d" % seq)
        wal.close()
        records, report = scan_wal(str(tmp_path), registry=registry)
        assert [r.seq for r in records] == [1, 2, 3]
        assert registry.counter("storage.write_errors").value == 1
        assert registry.counter("storage.rescue_rotations").value == 1

    def test_enospc_rotates_or_fails_never_pretends(self, tmp_path):
        wal, registry = self._wal(tmp_path, DiskFull(path_contains="wal-"))
        wal.append(1, 11, b"first")
        wal.close()
        records, _report = scan_wal(str(tmp_path), registry=registry)
        assert [r.seq for r in records] == [1]
        assert registry.counter("storage.rescue_rotations").value == 1

    def test_short_write_tail_is_repaired_and_chain_resumes(self, tmp_path):
        wal, registry = self._wal(
            tmp_path, ShortWrite(fraction=0.5, path_contains="wal-")
        )
        wal.append(1, 11, b"x" * 64)
        wal.append(2, 22, b"y" * 64)
        wal.close()
        records, report = scan_wal(str(tmp_path), registry=registry)
        assert [r.seq for r in records] == [1, 2]
        assert report.truncations == 1  # the torn prefix in the abandoned segment
        assert report.dropped_segments == 0

    def test_double_write_failure_poisons_the_log(self, tmp_path):
        wal, registry = self._wal(
            tmp_path, WriteError(path_contains="wal-", times=2)
        )
        with pytest.raises(DurabilityError) as excinfo:
            wal.append(1, 11, b"doomed")
        assert excinfo.value.op == "write"
        assert wal.poisoned
        with pytest.raises(DurabilityError):
            wal.append(2, 22, b"after-poison")
        wal.close()


class TestWalFsyncgate:
    def test_failed_fsync_poisons_and_never_acks(self, tmp_path):
        plan = FaultPlan(seed=3)
        registry = MetricsRegistry()
        plan.bind_registry(registry)
        wal = WriteAheadLog(
            str(tmp_path),
            fsync="always",
            registry=registry,
            fs=FaultyFileSystem(plan, OS_FILESYSTEM),
        )
        wal.append(1, 11, b"acked")
        plan.injectors.append(FsyncFailure(path_contains="wal-"))
        with pytest.raises(DurabilityError) as excinfo:
            wal.append(2, 22, b"never-acked")
        assert excinfo.value.op == "fsync"
        assert wal.poisoned
        assert registry.counter("storage.fsync_failures").value == 1
        # Sticky: the log never takes another record.
        with pytest.raises(DurabilityError):
            wal.append(3, 33, b"later")
        wal.close()
        # The unsynced tail is untrusted AND physically gone: recovery
        # sees exactly the acknowledged prefix.
        records, _report = scan_wal(str(tmp_path), registry=registry)
        assert [r.seq for r in records] == [1]


class TestSessionDurabilityBarrier:
    def test_fsync_failure_escapes_before_any_ticket_resolves(
        self, group, tmp_path
    ):
        registry = MetricsRegistry()
        plan = FaultPlan(seed=3).bind_registry(registry)
        session = LitmusSession.create(
            initial={("acct", i): 100 for i in range(NUM_ACCOUNTS)},
            config=CONFIG,
            group=group,
            registry=registry,
            fault_plan=plan,
            durability=DurabilityConfig(directory=str(tmp_path)),
        )
        session.submit("alice", TRANSFER, src=0, dst=1, amount=5)
        assert session.flush().accepted  # a healthy acknowledged batch
        plan.injectors.append(FsyncFailure(path_contains="wal-"))
        ticket = session.submit("alice", TRANSFER, src=1, dst=2, amount=5)
        with pytest.raises(DurabilityError):
            session.flush()
        assert not ticket.resolved  # the ack never escaped
        session.close()
        # Recovery finds exactly the acknowledged history.
        recovered = LitmusSession.recover(str(tmp_path), [TRANSFER], group=group)
        assert recovered.server.db.get(("acct", 0)) == 95
        assert recovered.server.db.get(("acct", 1)) == 105
        assert recovered.server.db.get(("acct", 2)) == 100
        recovered.close()

    def test_write_errors_are_invisible_to_the_application(
        self, group, tmp_path
    ):
        registry = MetricsRegistry()
        plan = FaultPlan(seed=3).bind_registry(registry)
        session = LitmusSession.create(
            initial={("acct", i): 100 for i in range(NUM_ACCOUNTS)},
            config=CONFIG,
            group=group,
            registry=registry,
            fault_plan=plan,
            durability=DurabilityConfig(directory=str(tmp_path)),
        )
        plan.injectors.append(WriteError(path_contains="wal-"))
        ticket = session.submit("alice", TRANSFER, src=0, dst=1, amount=5)
        assert session.flush().accepted
        assert ticket.accepted
        assert registry.counter("storage.rescue_rotations").value == 1
        session.close()
        recovered = LitmusSession.recover(str(tmp_path), [TRANSFER], group=group)
        assert recovered.server.db.get(("acct", 0)) == 95
        recovered.close()
