"""Tests for the SQL front-end: parsing, compilation, and end-to-end use."""

from __future__ import annotations

import pytest

from repro.db.database import Database
from repro.db.txn import Transaction
from repro.sql import SqlCatalog, SqlError, compile_procedure, parse_script
from repro.sql.parser import (
    InsertStatement,
    SelectStatement,
    SqlBinary,
    SqlCase,
    SqlLiteral,
    SqlParam,
    UpdateStatement,
    tokenize,
)


@pytest.fixture()
def catalog() -> SqlCatalog:
    cat = SqlCatalog()
    cat.create_table("accounts", key=("id",), columns=("balance", "flags"))
    cat.create_table("stock", key=("w_id", "i_id"), columns=("qty", "ytd"))
    return cat


class TestTokenizer:
    def test_basic_tokens(self):
        tokens = tokenize("SELECT balance FROM accounts WHERE id = :src")
        kinds = [t.kind for t in tokens]
        assert kinds == ["keyword", "name", "keyword", "name", "keyword",
                         "name", "symbol", "param"]

    def test_keywords_case_insensitive(self):
        assert tokenize("select")[0].text == "select"
        assert tokenize("SeLeCt")[0].text == "select"

    def test_rejects_garbage(self):
        with pytest.raises(SqlError):
            tokenize("SELECT @balance")


class TestParser:
    def test_select(self):
        (stmt,) = parse_script("SELECT balance, flags FROM accounts WHERE id = :a")
        assert isinstance(stmt, SelectStatement)
        assert stmt.columns == ("balance", "flags")
        assert stmt.key_params == {"id": "a"}

    def test_update_with_expression(self):
        (stmt,) = parse_script(
            "UPDATE accounts SET balance = balance - :amt WHERE id = :a"
        )
        assert isinstance(stmt, UpdateStatement)
        column, expr = stmt.assignments[0]
        assert column == "balance"
        assert isinstance(expr, SqlBinary) and expr.op == "-"

    def test_insert(self):
        (stmt,) = parse_script(
            "INSERT INTO accounts (balance, flags) VALUES (:b, 0) WHERE id = :a"
        )
        assert isinstance(stmt, InsertStatement)
        assert stmt.columns == ("balance", "flags")
        assert isinstance(stmt.values[0], SqlParam)
        assert isinstance(stmt.values[1], SqlLiteral)

    def test_composite_key(self):
        (stmt,) = parse_script(
            "SELECT qty FROM stock WHERE w_id = :w AND i_id = :i"
        )
        assert stmt.key_params == {"w_id": "w", "i_id": "i"}

    def test_multi_statement_script(self):
        stmts = parse_script(
            "UPDATE accounts SET balance = 1 WHERE id = :a;"
            "SELECT balance FROM accounts WHERE id = :a;"
        )
        assert len(stmts) == 2

    def test_case_expression(self):
        (stmt,) = parse_script(
            "UPDATE stock SET qty = CASE WHEN qty < :q THEN qty + 91 "
            "ELSE qty - :q END WHERE w_id = :w AND i_id = :i"
        )
        _column, expr = stmt.assignments[0]
        assert isinstance(expr, SqlCase)

    def test_operator_precedence(self):
        (stmt,) = parse_script(
            "UPDATE accounts SET balance = 1 + 2 * 3 WHERE id = :a"
        )
        _c, expr = stmt.assignments[0]
        assert expr.op == "+"
        assert isinstance(expr.right, SqlBinary) and expr.right.op == "*"

    def test_key_must_be_parameter(self):
        with pytest.raises(SqlError, match="parameters"):
            parse_script("SELECT balance FROM accounts WHERE id = 5")

    def test_insert_arity_mismatch(self):
        with pytest.raises(SqlError, match="column"):
            parse_script(
                "INSERT INTO accounts (balance, flags) VALUES (1) WHERE id = :a"
            )

    def test_empty_script(self):
        with pytest.raises(SqlError):
            parse_script("   ")


class TestCatalog:
    def test_unknown_table(self, catalog):
        with pytest.raises(SqlError):
            catalog.table("ghosts")

    def test_duplicate_table(self, catalog):
        with pytest.raises(SqlError):
            catalog.create_table("accounts", key=("id",), columns=("x",))

    def test_initial_row(self, catalog):
        row = catalog.initial_row("accounts", (7,), balance=100, flags=1)
        assert row == {("accounts.balance", 7): 100, ("accounts.flags", 7): 1}

    def test_initial_row_validates(self, catalog):
        with pytest.raises(SqlError):
            catalog.initial_row("accounts", (7, 8), balance=1)
        with pytest.raises(SqlError):
            catalog.initial_row("accounts", (7,), nope=1)


class TestCompilation:
    def test_transfer_roundtrip(self, catalog):
        program = compile_procedure(
            "transfer",
            """
            UPDATE accounts SET balance = balance - :amount WHERE id = :src;
            UPDATE accounts SET balance = balance + :amount WHERE id = :dst;
            SELECT balance FROM accounts WHERE id = :dst;
            """,
            catalog,
        )
        state = {("accounts.balance", 1): 100, ("accounts.balance", 2): 50}
        result = program.execute(
            {"amount": 30, "src": 1, "dst": 2}, lambda k: state.get(k, 0)
        )
        writes = dict(result.writes)
        assert writes[("accounts.balance", 1)] == 70
        assert writes[("accounts.balance", 2)] == 80
        assert result.outputs == (80,)

    def test_update_reads_before_writes(self, catalog):
        # Swap-like: both assignments see the pre-update row.
        program = compile_procedure(
            "swap",
            "UPDATE accounts SET balance = flags, flags = balance WHERE id = :a",
            catalog,
        )
        state = {("accounts.balance", 3): 10, ("accounts.flags", 3): 20}
        result = program.execute({"a": 3}, lambda k: state.get(k, 0))
        writes = dict(result.writes)
        assert writes[("accounts.balance", 3)] == 20
        assert writes[("accounts.flags", 3)] == 10

    def test_case_compiles_to_if(self, catalog):
        program = compile_procedure(
            "replenish",
            "UPDATE stock SET qty = CASE WHEN qty < :q THEN qty + 91 "
            "ELSE qty - :q END WHERE w_id = :w AND i_id = :i",
            catalog,
        )
        low = program.execute(
            {"q": 10, "w": 0, "i": 0}, lambda k: 5
        )
        high = program.execute(
            {"q": 10, "w": 0, "i": 0}, lambda k: 50
        )
        assert dict(low.writes)[("stock.qty", 0, 0)] == 5 + 91
        assert dict(high.writes)[("stock.qty", 0, 0)] == 40

    def test_duplicate_column_reads_deduplicated(self, catalog):
        program = compile_procedure(
            "double_read",
            "SELECT balance FROM accounts WHERE id = :a;"
            "SELECT balance FROM accounts WHERE id = :a;",
            catalog,
        )
        assert len(program.read_statements()) == 1
        assert len([s for s in program.statements if type(s).__name__ == "Emit"]) == 2

    def test_unknown_column_rejected(self, catalog):
        with pytest.raises(SqlError):
            compile_procedure(
                "bad", "SELECT wealth FROM accounts WHERE id = :a", catalog
            )

    def test_unbound_key_rejected(self, catalog):
        with pytest.raises(SqlError, match="key column"):
            compile_procedure(
                "bad", "SELECT qty FROM stock WHERE w_id = :w", catalog
            )

    def test_compiles_to_circuit(self, catalog):
        from repro.vc.compiler import CircuitCompiler

        program = compile_procedure(
            "transfer",
            "UPDATE accounts SET balance = balance - :amt WHERE id = :src;"
            "UPDATE accounts SET balance = balance + :amt WHERE id = :dst;",
            catalog,
        )
        compiled = CircuitCompiler().compile_program(program)
        assert compiled.total_constraints >= 2


class TestEndToEnd:
    def test_sql_procedures_through_litmus(self, catalog, group):
        from repro.core import LitmusClient, LitmusConfig, LitmusServer

        transfer = compile_procedure(
            "sql_transfer",
            "UPDATE accounts SET balance = balance - :amount WHERE id = :src;"
            "UPDATE accounts SET balance = balance + :amount WHERE id = :dst;"
            "SELECT balance FROM accounts WHERE id = :src;",
            catalog,
        )
        initial = {}
        for account in range(4):
            initial.update(catalog.initial_row("accounts", (account,), balance=100, flags=0))
        config = LitmusConfig(cc="dr", processing_batch_size=8, prime_bits=64)
        server = LitmusServer(initial=initial, config=config, group=group)
        client = LitmusClient(group, server.digest, config=config)
        txns = [
            Transaction(i, transfer, {"src": i % 4, "dst": (i + 1) % 4, "amount": 5})
            for i in range(1, 9)
        ]
        response = server.execute_batch(txns)
        verdict = client.verify_response(txns, response)
        assert verdict.accepted, verdict.reason
        total = sum(
            server.db.get(("accounts.balance", a)) for a in range(4)
        )
        assert total == 400

    def test_sql_on_database_directly(self, catalog):
        deposit = compile_procedure(
            "deposit",
            "UPDATE accounts SET balance = balance + :amt WHERE id = :a",
            catalog,
        )
        db = Database(
            initial=catalog.initial_row("accounts", (1,), balance=10, flags=0),
            cc="dr",
            processing_batch_size=4,
        )
        txns = [Transaction(i, deposit, {"a": 1, "amt": 5}) for i in range(1, 5)]
        report = db.run(txns)
        assert report.stats.committed == 4
        assert db.get(("accounts.balance", 1)) == 30
