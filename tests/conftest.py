"""Shared fixtures.

RSA group generation is the slowest fixture; a single 512-bit test group is
cached per process (deterministic seed) and shared by every test that does
not explicitly need a fresh group.
"""

from __future__ import annotations

import pytest

from repro.crypto.rsa_group import RSAGroup, default_group


@pytest.fixture(scope="session")
def group() -> RSAGroup:
    """Session-wide 512-bit RSA group with trapdoor."""
    return default_group(bits=512)


@pytest.fixture(scope="session")
def public_group(group: RSAGroup) -> RSAGroup:
    """The same group without the trapdoor (the server's view)."""
    return group.public_view()
