"""Unit tests for the concrete injectors, over miniature response shapes."""

from __future__ import annotations

from dataclasses import dataclass, field

import pytest

from repro.errors import MessageDropped, ProverKilled
from repro.faults import (
    CorruptProofPiece,
    DropMessage,
    DropPiece,
    FaultPlan,
    KillProver,
    NetworkFault,
    ReorderPieces,
    TamperEndDigest,
    TamperPublicStatement,
)
from repro.sim.network import LAN, NetworkModel, SimulatedChannel


@dataclass(frozen=True)
class _Proof:
    payload: bytes = b"\x42proof"


@dataclass(frozen=True)
class _Piece:
    piece_index: int
    proof: _Proof = field(default_factory=_Proof)
    public_values: tuple = (10, 20, 30)
    end_digest: int = 0xBEEF


@dataclass(frozen=True)
class _Response:
    pieces: tuple


def _response(n: int = 3) -> _Response:
    return _Response(pieces=tuple(_Piece(piece_index=i) for i in range(n)))


class TestResponseTampering:
    def test_corrupt_proof_flips_low_bit(self):
        plan = FaultPlan(CorruptProofPiece(piece=1))
        out = plan.on_response(_response())
        assert out.pieces[1].proof.payload == b"\x43proof"
        assert out.pieces[0].proof.payload == b"\x42proof"
        assert plan.events[0].kind == "corrupt_proof"

    def test_one_shot_passes_the_retry_through(self):
        plan = FaultPlan(CorruptProofPiece(piece=0))
        plan.on_response(_response())
        clean = plan.on_response(_response())
        assert clean.pieces[0].proof.payload == b"\x42proof"
        assert plan.injected == 1

    def test_absent_target_is_a_noop(self):
        plan = FaultPlan(CorruptProofPiece(piece=9))
        out = plan.on_response(_response())
        assert out.pieces == _response().pieces
        assert plan.injected == 0

    def test_tamper_statement_perturbs_last_public_value(self):
        plan = FaultPlan(TamperPublicStatement(piece=2))
        out = plan.on_response(_response())
        assert out.pieces[2].public_values == (10, 20, 31)

    def test_tamper_end_digest(self):
        plan = FaultPlan(TamperEndDigest(piece=0))
        out = plan.on_response(_response())
        assert out.pieces[0].end_digest == 0xBEEF ^ 1

    def test_drop_piece_removes_it(self):
        plan = FaultPlan(DropPiece(piece=1))
        out = plan.on_response(_response())
        assert [p.piece_index for p in out.pieces] == [0, 2]

    def test_reorder_is_deterministic_and_really_reorders(self):
        def run(seed):
            plan = FaultPlan(ReorderPieces(), seed=seed)
            return [p.piece_index for p in plan.on_response(_response(4)).pieces]

        assert run(7) == run(7)
        assert run(7) != [0, 1, 2, 3]

    def test_reorder_skips_single_piece_responses(self):
        plan = FaultPlan(ReorderPieces())
        out = plan.on_response(_response(1))
        assert [p.piece_index for p in out.pieces] == [0]
        assert plan.injected == 0


class TestProcessAndMessageFaults:
    def test_kill_prover_targets_one_piece(self):
        plan = FaultPlan(KillProver(piece=2))
        plan.on_prove(0)
        plan.on_prove(1)
        with pytest.raises(ProverKilled):
            plan.on_prove(2)
        plan.on_prove(2)  # one-shot: the retry proves fine
        assert plan.injected == 1

    def test_drop_message_directions(self):
        plan = FaultPlan(DropMessage(direction="response"))
        plan.on_request([1])  # wrong direction: unaffected
        with pytest.raises(MessageDropped):
            plan.on_response(_response())
        with pytest.raises(ValueError):
            DropMessage(direction="sideways")


class TestNetworkFault:
    def test_latency_accumulates_virtually(self):
        channel = SimulatedChannel(model=NetworkModel(rtt_seconds=0.5))
        plan = FaultPlan(NetworkFault(channel, payload_bytes=0))
        plan.on_request([1])
        plan.on_response(_response())
        assert plan.network_seconds == pytest.approx(1.0)
        assert channel.delivered == 2
        assert plan.injected == 0  # nothing dropped: no fault events

    def test_drops_are_seeded_and_recorded(self):
        channel = SimulatedChannel(model=LAN, seed=1, drop_probability=1.0)
        plan = FaultPlan(NetworkFault(channel))
        with pytest.raises(MessageDropped):
            plan.on_request([1])
        assert channel.dropped == 1
        assert plan.injected == 1
        assert plan.events[0].kind == "network"

    def test_channel_determinism(self):
        def pattern(seed):
            channel = SimulatedChannel(model=LAN, seed=seed, drop_probability=0.5)
            outcomes = []
            for _ in range(32):
                try:
                    channel.deliver(0)
                    outcomes.append(True)
                except MessageDropped:
                    outcomes.append(False)
            return outcomes

        assert pattern(5) == pattern(5)
        assert pattern(5) != pattern(6)

    def test_extra_delay_charged(self):
        channel = SimulatedChannel(
            model=NetworkModel(rtt_seconds=1.0),
            seed=0,
            delay_probability=1.0,
            extra_delay_seconds=2.0,
        )
        latency = channel.deliver(0)
        assert latency == pytest.approx(3.0)
        assert channel.virtual_seconds == pytest.approx(3.0)
