"""Unit tests for the fault-plan machinery (determinism, firing control)."""

from __future__ import annotations

import pytest

from repro.errors import MessageDropped
from repro.faults import DropMessage, FaultInjector, FaultPlan
from repro.obs.metrics import MetricsRegistry


class _Noisy(FaultInjector):
    """Records every firing opportunity it wins."""

    kind = "noisy"

    def on_request(self, plan, txns):
        if self._take(plan):
            plan.record(self, "request", "noop")


class TestFiringControl:
    def test_one_shot_by_default(self):
        plan = FaultPlan(_Noisy())
        for _ in range(5):
            plan.on_request([])
        assert plan.injected == 1

    def test_times_bounds_firings(self):
        plan = FaultPlan(_Noisy(times=3))
        for _ in range(10):
            plan.on_request([])
        assert plan.injected == 3

    def test_unlimited_with_times_none(self):
        plan = FaultPlan(_Noisy(times=None))
        for _ in range(7):
            plan.on_request([])
        assert plan.injected == 7

    def test_invalid_times_rejected(self):
        with pytest.raises(ValueError):
            _Noisy(times=0)

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            _Noisy(probability=0.0)
        with pytest.raises(ValueError):
            _Noisy(probability=1.5)


class TestDeterminism:
    def _fired_pattern(self, seed: int) -> list[bool]:
        injector = _Noisy(times=None, probability=0.5)
        plan = FaultPlan(injector, seed=seed)
        pattern = []
        for _ in range(32):
            before = plan.injected
            plan.on_request([])
            pattern.append(plan.injected > before)
        return pattern

    def test_same_seed_same_schedule(self):
        assert self._fired_pattern(7) == self._fired_pattern(7)

    def test_different_seed_different_schedule(self):
        assert self._fired_pattern(7) != self._fired_pattern(8)

    def test_unconditional_injectors_never_touch_the_stream(self):
        """An always-firing injector must not perturb the seeded stream."""
        solo = FaultPlan(_Noisy(times=None, probability=0.5), seed=3)
        mixed = FaultPlan(
            _Noisy(times=None), _Noisy(times=None, probability=0.5), seed=3
        )
        solo_pattern, mixed_pattern = [], []
        for _ in range(32):
            a, b = solo.injected, mixed.injected
            solo.on_request([])
            mixed.on_request([])
            solo_pattern.append(solo.injected - a)
            # Subtract the unconditional injector's guaranteed firing.
            mixed_pattern.append(mixed.injected - b - 1)
        assert solo_pattern == mixed_pattern


class TestRecording:
    def test_events_and_counters(self):
        registry = MetricsRegistry()
        plan = FaultPlan(_Noisy(times=2)).bind_registry(registry)
        plan.on_request([])
        plan.on_request([])
        plan.on_request([])
        assert plan.injected == 2
        assert [e.kind for e in plan.events] == ["noisy", "noisy"]
        assert [e.stage for e in plan.events] == ["request", "request"]
        snap = registry.snapshot()
        assert snap["faults.injected"]["value"] == 2
        assert snap["faults.injected.noisy"]["value"] == 2

    def test_drop_message_raises_and_records(self):
        registry = MetricsRegistry()
        plan = FaultPlan(DropMessage(direction="request")).bind_registry(registry)
        with pytest.raises(MessageDropped):
            plan.on_request([1, 2, 3])
        # One-shot: the retry goes through.
        plan.on_request([1, 2, 3])
        assert plan.injected == 1
        assert registry.snapshot()["faults.injected.drop_message"]["value"] == 1
