"""Disk-fault nemesis: chaos schedules where the *disk* misbehaves too.

``generate_schedule(disk_fault_fraction=...)`` interleaves disk-fault
steps (fsync failure, write EIO, ENOSPC, short writes) and checkpoint
rot with the crash/fault steps PR 9 introduced.  The referee's promise
is unchanged and now harder: **zero acked-data loss** even when a WAL
write tears, an fsync lies, or a checkpoint rots at rest — absorbed
faults stay invisible, fsync failures force a full down-and-recover.

The quick tests run in tier-1; the wider seed sweep is ``diskfault``
marked (its own CI job: ``pytest -m diskfault``).
"""

from __future__ import annotations

import pytest

from repro.faults import NemesisStep, generate_schedule, run_nemesis
from repro.faults.nemesis import _DISK_FAULTS
from repro.obs.metrics import MetricsRegistry

from .test_nemesis import NUM_ACCOUNTS, _owners


class TestScheduleGeneration:
    def test_legacy_schedules_are_byte_identical(self):
        """disk_fault_fraction=0.0 must not perturb PR 9 seeds."""
        for seed in (0, 7, 11):
            legacy = generate_schedule(seed=seed, steps=12, num_shards=3)
            assert generate_schedule(
                seed=seed, steps=12, num_shards=3, disk_fault_fraction=0.0
            ) == legacy
            assert all(s.disk == "" for s in legacy)

    def test_disk_steps_appear_and_are_deterministic(self):
        a = generate_schedule(
            seed=11, steps=40, num_shards=3, disk_fault_fraction=0.25
        )
        b = generate_schedule(
            seed=11, steps=40, num_shards=3, disk_fault_fraction=0.25
        )
        assert a == b
        disk_steps = [s for s in a if s.kind == "disk-fault"]
        assert disk_steps
        for step in disk_steps:
            assert step.disk in _DISK_FAULTS
            assert 0 <= step.shard < 3

    def test_every_disk_fault_kind_is_reachable(self):
        seen = set()
        for seed in range(30):
            for step in generate_schedule(
                seed=seed, steps=20, num_shards=3, disk_fault_fraction=0.3
            ):
                if step.kind == "disk-fault":
                    seen.add(step.disk)
        assert seen == set(_DISK_FAULTS)

    def test_ckpt_rot_only_with_disk_faults_enabled(self):
        kinds = set()
        for seed in range(30):
            for step in generate_schedule(
                seed=seed, steps=20, num_shards=3, disk_fault_fraction=0.3
            ):
                if step.corruption:
                    kinds.add(step.corruption)
        assert "ckpt-rot" in kinds
        for seed in range(30):
            for step in generate_schedule(seed=seed, steps=20, num_shards=3):
                assert step.corruption != "ckpt-rot"


class TestRunDiskNemesis:
    def test_fsync_failure_downs_the_deployment_but_loses_nothing(
        self, group, tmp_path
    ):
        """The acceptance run: an injected fsync failure mid-transfer must
        force a recovery (fsyncgate: the deployment goes down rather than
        trust the tail) with every previously acked transfer intact."""
        owners = _owners(3)
        shards = sorted(owners)
        src = owners[shards[0]][0]
        dst = owners[shards[1]][0]
        steps = [
            NemesisStep(kind="transfer", src=src, dst=dst, amount=5),
            NemesisStep(
                kind="disk-fault", src=src, dst=dst, amount=4,
                shard=shards[0], disk="fsync-failure",
            ),
            NemesisStep(kind="transfer", src=dst, dst=src, amount=2),
        ]
        registry = MetricsRegistry()
        report = run_nemesis(
            steps,
            directory=str(tmp_path / "fsync"),
            seed=5,
            group=group,
            registry=registry,
        )
        assert report.ok, report.invariant_failures
        assert report.disk_faults == 1
        assert report.recoveries == 1  # the fsync failure forced it
        assert report.final_balance == NUM_ACCOUNTS * 100
        assert registry.counter("nemesis.disk_faults").value == 1
        assert registry.counter("storage.fsync_failures").value >= 1

    def test_write_errors_are_absorbed_without_a_recovery(self, group, tmp_path):
        owners = _owners(3)
        shards = sorted(owners)
        src = owners[shards[0]][0]
        dst = owners[shards[1]][0]
        steps = [
            NemesisStep(
                kind="disk-fault", src=src, dst=dst, amount=5,
                shard=shards[0], disk="write-eio",
            ),
            NemesisStep(kind="transfer", src=dst, dst=src, amount=2),
        ]
        registry = MetricsRegistry()
        report = run_nemesis(
            steps,
            directory=str(tmp_path / "eio"),
            seed=9,
            group=group,
            registry=registry,
        )
        assert report.ok, report.invariant_failures
        assert report.disk_faults == 1
        assert report.recoveries == 0  # rescue rotation absorbed it
        assert registry.counter("storage.rescue_rotations").value >= 1


@pytest.mark.diskfault
class TestDiskFaultSweep:
    def test_seed_sweep_holds_all_invariants(self, group, tmp_path):
        """Crashes, checkpoint rot, and disk faults combined: the referee
        must find zero acked-data loss across a seeded sweep."""
        disk_faults = 0
        for seed in (0, 3, 5, 11, 19):
            report = run_nemesis(
                generate_schedule(
                    seed=seed, steps=12, num_shards=3,
                    crash_fraction=0.15, disk_fault_fraction=0.25,
                ),
                directory=str(tmp_path / f"seed-{seed}"),
                seed=seed,
                group=group,
            )
            assert report.ok, (seed, report.invariant_failures)
            assert report.recoveries >= report.crashes
            disk_faults += report.disk_faults
        assert disk_faults >= 5  # the sweep actually exercised the disk

    def test_two_shard_deployment_with_disk_faults(self, group, tmp_path):
        report = run_nemesis(
            generate_schedule(
                seed=13, steps=10, num_shards=2, disk_fault_fraction=0.3
            ),
            directory=str(tmp_path / "two"),
            seed=13,
            num_shards=2,
            group=group,
        )
        assert report.ok, report.invariant_failures
