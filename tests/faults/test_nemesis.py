"""The seeded nemesis chaos harness (repro.faults.nemesis).

Schedule generation is pure and deterministic; the run tests drive real
durable sharded sessions through crash + corruption episodes and assert
the referee found nothing.  The ``chaos`` mark (excluded by default, like
``faults``/``crash``/``soak``) gates the wider seed sweep::

    pytest -m chaos
"""

from __future__ import annotations

import pytest

from repro.core.sharding import ShardMap
from repro.errors import ReproError
from repro.faults import (
    NemesisStep,
    generate_schedule,
    minimize_schedule,
    run_nemesis,
)
from repro.obs.metrics import MetricsRegistry

NUM_ACCOUNTS = 16


def _owners(num_shards: int) -> dict[int, list[int]]:
    sm = ShardMap(num_shards)
    owners: dict[int, list[int]] = {}
    for acct in range(NUM_ACCOUNTS):
        owners.setdefault(sm.shard_of(("acct", acct)), []).append(acct)
    return owners


class TestGenerateSchedule:
    def test_deterministic_per_seed(self):
        a = generate_schedule(seed=11, steps=20, num_shards=3)
        b = generate_schedule(seed=11, steps=20, num_shards=3)
        assert a == b and len(a) == 20
        assert generate_schedule(seed=12, steps=20, num_shards=3) != a

    def test_crash_steps_target_real_cross_pairs(self):
        sm = ShardMap(3)
        for seed in range(10):
            for step in generate_schedule(seed=seed, steps=20, num_shards=3):
                if step.kind != "crash":
                    continue
                src_shard = sm.shard_of(("acct", step.src))
                dst_shard = sm.shard_of(("acct", step.dst))
                assert src_shard == step.shard  # the kill lands mid-round
                assert dst_shard != src_shard  # and the round is cross-shard

    def test_corruption_only_pairs_with_after_log(self):
        """Damage may only land on the un-acked record of the crashed shard."""
        for seed in range(20):
            for step in generate_schedule(seed=seed, steps=30, num_shards=3):
                if step.kind == "crash" and step.corruption:
                    assert step.stage == "after-log"

    def test_rejects_empty_schedule(self):
        with pytest.raises(ReproError):
            generate_schedule(seed=0, steps=0)


class TestRunNemesis:
    def test_mid_cross_round_kill_leaves_no_torn_transactions(
        self, group, tmp_path
    ):
        """The acceptance run: kill a shard mid cross-shard round (twice,
        once per 2PC leg, one with a torn WAL on top) and verify that after
        recovery every acked cross-shard transfer is applied on all
        participants or none."""
        owners = _owners(3)
        shards = sorted(owners)
        target, other = shards[0], shards[1]
        src, dst = owners[target][0], owners[other][0]
        steps = [
            NemesisStep(kind="transfer", src=src, dst=dst, amount=5),
            NemesisStep(
                kind="crash", src=src, dst=dst, amount=4,
                shard=target, stage="after-log", corruption="torn",
            ),
            NemesisStep(
                kind="crash", src=src, dst=dst, amount=3,
                shard=other, stage="before-log",
            ),
            NemesisStep(kind="transfer", src=dst, dst=src, amount=2),
        ]
        registry = MetricsRegistry()
        report = run_nemesis(
            steps,
            directory=str(tmp_path / "nemesis"),
            seed=5,
            group=group,
            registry=registry,
        )
        assert report.ok, report.invariant_failures
        assert report.crashes == 2 and report.recoveries == 2
        assert report.in_doubt_resolved == 2
        assert report.final_balance == NUM_ACCOUNTS * 100
        assert registry.counter("nemesis.crashes").value == 2
        assert registry.counter("nemesis.recoveries").value == 2
        assert registry.counter("nemesis.invariant_failures").value == 0

    def test_generated_schedule_survives(self, group, tmp_path):
        steps = generate_schedule(seed=7, steps=8, num_shards=3)
        report = run_nemesis(
            steps, directory=str(tmp_path / "gen"), seed=7, group=group
        )
        assert report.ok, report.invariant_failures
        assert report.steps == 8
        assert report.crashes >= 1  # seed 7's schedule includes crash steps
        assert report.recoveries == report.crashes


class TestMinimizeSchedule:
    def test_shrinks_to_the_culprit(self):
        steps = [f"pre{i}" for i in range(9)] + ["bad"] + [
            f"post{i}" for i in range(6)
        ]
        probes: list[int] = []

        def fails(candidate):
            probes.append(len(candidate))
            return "bad" in candidate

        assert minimize_schedule(steps, fails) == ["bad"]
        assert probes[0] == len(steps)  # the full schedule is checked first

    def test_keeps_coupled_steps(self):
        """Failures needing two steps keep both (1-minimality, not global)."""

        def fails(candidate):
            return "a" in candidate and "b" in candidate

        assert sorted(minimize_schedule(list("xaybz"), fails)) == ["a", "b"]

    def test_raises_when_the_full_schedule_passes(self):
        with pytest.raises(ReproError):
            minimize_schedule(["fine"], lambda candidate: False)


@pytest.mark.chaos
class TestChaosSweep:
    def test_seed_sweep_holds_all_invariants(self, group, tmp_path):
        for seed in range(6):
            report = run_nemesis(
                generate_schedule(seed=seed, steps=10, num_shards=3),
                directory=str(tmp_path / f"seed-{seed}"),
                seed=seed,
                group=group,
            )
            assert report.ok, (seed, report.invariant_failures)
            assert report.recoveries == report.crashes

    def test_two_shard_deployment(self, group, tmp_path):
        report = run_nemesis(
            generate_schedule(seed=3, steps=10, num_shards=2),
            directory=str(tmp_path / "two"),
            seed=3,
            num_shards=2,
            group=group,
        )
        assert report.ok, report.invariant_failures
