"""Tests for the SmallBank workload."""

from __future__ import annotations

import pytest

from repro.core import LitmusClient, LitmusConfig, LitmusServer, SumInvariant
from repro.db.database import Database
from repro.errors import WorkloadError
from repro.vc.compiler import CircuitCompiler
from repro.workloads.smallbank import SMALLBANK_PROGRAMS, SmallBankWorkload


class TestPrograms:
    def test_all_six_types_exist_and_compile(self):
        compiler = CircuitCompiler()
        assert len(SMALLBANK_PROGRAMS) == 6
        for program in SMALLBANK_PROGRAMS.values():
            compiled = compiler.compile_program(program)
            assert compiled.total_constraints >= 1

    def test_balance_semantics(self):
        program = SMALLBANK_PROGRAMS["balance"]
        state = {("checking", 3): 70, ("savings", 3): 30}
        result = program.execute({"c": 3}, state.__getitem__)
        assert result.outputs == (100,)
        assert result.writes == ()

    def test_amalgamate_moves_everything(self):
        program = SMALLBANK_PROGRAMS["amalgamate"]
        state = {("checking", 1): 40, ("savings", 1): 60, ("checking", 2): 5}
        result = program.execute({"src": 1, "dst": 2}, state.__getitem__)
        writes = dict(result.writes)
        assert writes[("checking", 1)] == 0
        assert writes[("savings", 1)] == 0
        assert writes[("checking", 2)] == 105

    def test_write_check_overdraft_penalty(self):
        program = SMALLBANK_PROGRAMS["write_check"]
        rich = {("checking", 1): 100, ("savings", 1): 100}
        result = program.execute({"c": 1, "amount": 50}, rich.__getitem__)
        assert dict(result.writes)[("checking", 1)] == 50
        assert result.outputs == (0,)  # no penalty
        poor = {("checking", 1): 10, ("savings", 1): 5}
        result = program.execute({"c": 1, "amount": 50}, poor.__getitem__)
        assert dict(result.writes)[("checking", 1)] == 10 - 50 - 1
        assert result.outputs == (1,)  # penalty charged

    def test_send_payment(self):
        program = SMALLBANK_PROGRAMS["send_payment"]
        state = {("checking", 1): 100, ("checking", 2): 20}
        result = program.execute({"src": 1, "dst": 2, "amount": 30}, state.__getitem__)
        writes = dict(result.writes)
        assert writes[("checking", 1)] == 70
        assert writes[("checking", 2)] == 50


class TestGenerator:
    def test_deterministic(self):
        a = SmallBankWorkload(num_customers=50, seed=3).generate(30)
        b = SmallBankWorkload(num_customers=50, seed=3).generate(30)
        assert [(t.program.name, t.params) for t in a] == [
            (t.program.name, t.params) for t in b
        ]

    def test_mix_contains_multiple_types(self):
        txns = SmallBankWorkload(num_customers=100, seed=5).generate(200)
        names = {t.program.name for t in txns}
        assert len(names) >= 4

    def test_two_customer_types_use_distinct_customers(self):
        txns = SmallBankWorkload(num_customers=20, theta=1.2, seed=7).generate(200)
        for txn in txns:
            if "src" in txn.params and "dst" in txn.params:
                assert txn.params["src"] != txn.params["dst"]

    def test_invalid_dimensions(self):
        with pytest.raises(WorkloadError):
            SmallBankWorkload(num_customers=1)


class TestEndToEnd:
    def test_money_conserved_without_writecheck(self):
        """Every type except WriteCheck (which burns the penalty and pays the
        check out of the system) conserves total money."""
        workload = SmallBankWorkload(num_customers=30, seed=9)
        db = Database(initial=workload.initial_data(), cc="dr", processing_batch_size=16)
        txns = [
            t
            for t in workload.generate(120)
            if t.program.name in ("sb_balance", "sb_amalgamate", "sb_send_payment")
        ]
        db.run(txns)
        total = sum(
            db.get((family, c))
            for family in ("checking", "savings")
            for c in range(30)
        )
        assert total == workload.total_money()

    def test_verified_smallbank_batch(self, group):
        workload = SmallBankWorkload(num_customers=16, seed=11)
        config = LitmusConfig(cc="dr", processing_batch_size=8, prime_bits=64)
        server = LitmusServer(
            initial=workload.initial_data(), config=config, group=group
        )
        client = LitmusClient(group, server.digest, config=config)
        txns = workload.generate(20)
        verdict = client.verify_response(txns, server.execute_batch(txns))
        assert verdict.accepted, verdict.reason

    def test_invariant_holds_for_transfers(self, group):
        """A sum invariant over checking+savings accepts pure transfers."""
        workload = SmallBankWorkload(num_customers=8, seed=13)
        invariant = SumInvariant.over("checking", "savings")
        config = LitmusConfig(cc="dr", processing_batch_size=8, prime_bits=64)
        server = LitmusServer(
            initial=workload.initial_data(), config=config, group=group,
            invariants=(invariant,),
        )
        client = LitmusClient(
            group, server.digest, config=config, invariants=(invariant,)
        )
        txns = [
            t for t in workload.generate(40)
            if t.program.name in ("sb_amalgamate", "sb_send_payment")
        ][:8]
        assert txns, "mix produced no transfer transactions"
        verdict = client.verify_response(txns, server.execute_batch(txns))
        assert verdict.accepted, verdict.reason