"""Tests for the Zipf sampler and the YCSB / TPC-C generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.db.database import Database
from repro.errors import WorkloadError
from repro.vc.compiler import CircuitCompiler
from repro.workloads.tpcc import PAYMENT_PROGRAM, TPCCWorkload, build_new_order_program
from repro.workloads.ycsb import YCSB_PROGRAMS, YCSBWorkload
from repro.workloads.zipf import ZipfSampler


class TestZipf:
    def test_uniform_at_theta_zero(self):
        sampler = ZipfSampler(100, 0.0, seed=1)
        samples = sampler.sample(20_000)
        counts = np.bincount(samples, minlength=100)
        assert counts.min() > 100  # every rank appears with ~200 expected

    def test_skew_increases_with_theta(self):
        low = ZipfSampler(1000, 0.4, seed=1)
        high = ZipfSampler(1000, 1.2, seed=1)
        assert high.expected_top_fraction(10) > low.expected_top_fraction(10)

    def test_empirical_matches_expected_mass(self):
        sampler = ZipfSampler(500, 0.8, seed=3)
        samples = sampler.sample(50_000)
        empirical = (samples < 10).mean()
        assert abs(empirical - sampler.expected_top_fraction(10)) < 0.02

    def test_samples_in_range(self):
        sampler = ZipfSampler(42, 1.6, seed=5)
        samples = sampler.sample(5000)
        assert samples.min() >= 0
        assert samples.max() < 42

    def test_invalid_parameters(self):
        with pytest.raises(WorkloadError):
            ZipfSampler(0, 0.5)
        with pytest.raises(WorkloadError):
            ZipfSampler(10, -0.1)


class TestYCSB:
    def test_deterministic_generation(self):
        a = YCSBWorkload(num_rows=100, seed=9).generate(20)
        b = YCSBWorkload(num_rows=100, seed=9).generate(20)
        assert [t.params for t in a] == [t.params for t in b]
        assert [t.program.name for t in a] == [t.program.name for t in b]

    def test_two_distinct_rows_per_txn(self):
        txns = YCSBWorkload(num_rows=50, theta=1.2, seed=2).generate(200)
        for txn in txns:
            assert txn.params["k0"] != txn.params["k1"]

    def test_write_ratio_respected(self):
        txns = YCSBWorkload(num_rows=1000, write_ratio=0.5, seed=3).generate(500)
        writes = sum(t.program.name.count("w") for t in txns)
        assert 400 < writes < 600  # ~50% of 1000 accesses

    def test_read_only_workload(self):
        txns = YCSBWorkload(num_rows=100, write_ratio=0.0, seed=4).generate(50)
        assert all(t.program.name == "ycsb_rr" for t in txns)

    def test_templates_compile(self):
        compiler = CircuitCompiler()
        for program in YCSB_PROGRAMS.values():
            compiled = compiler.compile_program(program)
            assert compiled.total_constraints >= 2

    def test_runs_on_database(self):
        workload = YCSBWorkload(num_rows=200, seed=5)
        db = Database(initial=workload.initial_data(), cc="dr", processing_batch_size=32)
        report = db.run(workload.generate(100))
        assert report.stats.committed == 100

    def test_invalid_write_ratio(self):
        with pytest.raises(WorkloadError):
            YCSBWorkload(write_ratio=1.5)


class TestTPCC:
    def test_initial_data_shape(self):
        workload = TPCCWorkload(num_warehouses=2, num_items=20)
        data = workload.initial_data()
        assert ("stock_qty", 0, 0) in data
        assert ("district_next_oid", 1, 9) in data
        assert ("customer_balance", 0, 0, 0) in data

    def test_new_order_executes(self):
        workload = TPCCWorkload(num_warehouses=2, num_items=30, order_lines=5)
        db = Database(initial=workload.initial_data(), cc="dr", processing_batch_size=8)
        txns = workload.generate_new_orders(10)
        report = db.run(txns)
        assert report.stats.committed == 10
        # The oid consistency check (second output) must hold.
        for result in report.results.values():
            assert result.outputs[1] == 1

    def test_payment_conserves_flow(self):
        workload = TPCCWorkload(num_warehouses=1)
        db = Database(initial=workload.initial_data(), cc="dr", processing_batch_size=8)
        txns = workload.generate_payments(20)
        db.run(txns)
        paid = sum(t.params["amount"] for t in txns)
        assert db.get(("warehouse_ytd", 0)) == paid

    def test_stock_replenishment_rule(self):
        program = build_new_order_program(1)
        # Stock 12, order 5 -> 12-5=7 < 10 boundary check: 12 < 15 -> +91.
        result = program.execute(
            {"w": 0, "d": 0, "c": 0, "oid": 0, "i0": 3, "q0": 5},
            {("district_next_oid", 0, 0): 0, ("item_price", 3): 10,
             ("stock_qty", 0, 3): 12, ("stock_ytd", 0, 3): 0,
             ("stock_order_cnt", 0, 3): 0}.__getitem__,
        )
        writes = dict(result.writes)
        assert writes[("stock_qty", 0, 3)] == 12 - 5 + 91

    def test_stock_normal_decrement(self):
        program = build_new_order_program(1)
        result = program.execute(
            {"w": 0, "d": 0, "c": 0, "oid": 0, "i0": 3, "q0": 5},
            {("district_next_oid", 0, 0): 0, ("item_price", 3): 10,
             ("stock_qty", 0, 3): 80, ("stock_ytd", 0, 3): 0,
             ("stock_order_cnt", 0, 3): 0}.__getitem__,
        )
        writes = dict(result.writes)
        assert writes[("stock_qty", 0, 3)] == 75

    def test_order_ids_sequential_per_district(self):
        workload = TPCCWorkload(num_warehouses=1, districts_per_warehouse=1)
        txns = workload.generate_new_orders(5)
        oids = [t.params["oid"] for t in txns]
        assert oids == [0, 1, 2, 3, 4]

    def test_programs_compile(self):
        compiler = CircuitCompiler()
        no = compiler.compile_program(build_new_order_program(10))
        pay = compiler.compile_program(PAYMENT_PROGRAM)
        # New Order is much heavier than Payment ("more queries, more gates").
        assert no.total_constraints > 50 * pay.total_constraints

    def test_mix_generation(self):
        workload = TPCCWorkload(num_warehouses=2)
        txns = workload.generate_mix(40)
        names = {t.program.name for t in txns}
        assert any(name.startswith("tpcc_new_order") for name in names)
        assert "tpcc_payment" in names

    def test_invalid_dimensions(self):
        with pytest.raises(WorkloadError):
            TPCCWorkload(num_warehouses=0)
        with pytest.raises(WorkloadError):
            build_new_order_program(0)
