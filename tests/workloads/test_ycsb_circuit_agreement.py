"""Property test: YCSB templates agree between interpreter and circuit."""

from __future__ import annotations

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.vc.compiler import CircuitCompiler
from repro.vc.field import to_field
from repro.workloads.ycsb import YCSB_PROGRAMS


@given(
    pattern=st.sampled_from(sorted(YCSB_PROGRAMS)),
    k0=st.integers(min_value=0, max_value=10_000),
    k1=st.integers(min_value=0, max_value=10_000),
    w0=st.integers(min_value=0, max_value=2**20),
    w1=st.integers(min_value=0, max_value=2**20),
    salt=st.integers(min_value=0, max_value=96),
    v0=st.integers(min_value=0, max_value=2**30),
    v1=st.integers(min_value=0, max_value=2**30),
)
@settings(max_examples=40, deadline=None)
def test_ycsb_interpreter_matches_circuit(pattern, k0, k1, w0, w1, salt, v0, v1):
    # The generator always picks two distinct rows per transaction; with
    # identical keys the DB write-set collapses by key while the circuit
    # exposes one output per write statement, so the shapes differ.
    assume(k0 != k1)
    program = YCSB_PROGRAMS[pattern]
    params = {"k0": k0, "k1": k1, "salt": salt}
    for index, op in enumerate(pattern):
        if op == "w":
            params[f"w{index}"] = (w0, w1)[index]
    state = {("usertable", k0): v0, ("usertable", k1): v1}
    interpreted = program.execute(params, lambda key: state.get(key, 0))

    compiler = CircuitCompiler()
    compiled = compiler.compile_program(program)
    read_values = {name: value for name, _key, value in interpreted.reads}
    binding = compiler.bind(compiled, params, read_values)
    assert binding.write_values == tuple(
        to_field(value) for _key, value in interpreted.writes
    )
    assert binding.outputs == tuple(to_field(v) for v in interpreted.outputs)
