"""Tests for canonical serialization and hashing helpers."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.hashing import hash_bytes_to_int, hash_pair, hash_to_int
from repro.errors import ReproError
from repro.serialization import encode, encode_pair

scalar = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(),
    st.text(max_size=20),
    st.binary(max_size=20),
)
value = st.recursive(scalar, lambda inner: st.tuples(inner, inner), max_leaves=6)


class TestEncode:
    def test_type_disjointness(self):
        candidates = [None, True, False, 0, 1, "", "0", b"", b"0", (), (0,)]
        encodings = [encode(v) for v in candidates]
        assert len(set(encodings)) == len(encodings)

    def test_bool_is_not_int(self):
        assert encode(True) != encode(1)
        assert encode(False) != encode(0)

    def test_negative_integers(self):
        assert encode(-5) != encode(5)

    def test_nested_tuples_unambiguous(self):
        assert encode(((1,), 2)) != encode((1, (2,)))
        assert encode((1, 2)) != encode(((1, 2),))

    def test_lists_encode_like_tuples(self):
        assert encode([1, 2]) == encode((1, 2))

    def test_unsupported_type(self):
        with pytest.raises(ReproError):
            encode({"a": 1})

    @given(value, value)
    @settings(max_examples=200)
    def test_injective_on_random_values(self, a, b):
        if encode(a) == encode(b):
            assert a == b

    @given(value)
    @settings(max_examples=100)
    def test_deterministic(self, v):
        assert encode(v) == encode(v)

    def test_encode_pair(self):
        assert encode_pair("k", 1) == encode(("k", 1))


class TestHashing:
    def test_hash_to_int_exact_bits(self):
        for bits in (16, 64, 257, 1024):
            assert hash_bytes_to_int(b"x", bits).bit_length() == bits

    def test_hash_to_int_rejects_tiny(self):
        with pytest.raises(ValueError):
            hash_bytes_to_int(b"x", 1)

    def test_domain_separation(self):
        assert hash_to_int("v", 64, domain=b"a") != hash_to_int("v", 64, domain=b"b")

    def test_hash_pair_binds_key_and_value(self):
        assert hash_pair("k", "v") != hash_pair("v", "k")
        assert hash_pair("k", 1) != hash_pair("k", 2)

    def test_hash_pair_no_concat_ambiguity(self):
        assert hash_pair("ab", "c") != hash_pair("a", "bc")
