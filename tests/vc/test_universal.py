"""Tests for the universal-setup (Plonk-style) backend."""

from __future__ import annotations

import pytest

from repro.errors import ConstraintViolation, ProofError
from repro.vc.circuit import CircuitBuilder
from repro.vc.snark import PROOF_SIZE_BYTES
from repro.vc.universal import PlonkSimulator


def square_circuit(label="square"):
    builder = CircuitBuilder(label=label)
    x = builder.input("x", public=False)
    builder.output(builder.mul(x, x))
    return builder.build()


class TestPlonkSimulator:
    def test_roundtrip(self):
        backend = PlonkSimulator()
        circuit = square_circuit()
        pk, vk = backend.setup(circuit)
        proof, public = backend.prove(pk, circuit, {"x": 6})
        assert backend.verify(vk, public, proof)
        assert 36 in public
        assert proof.size_bytes == PROOF_SIZE_BYTES

    def test_setup_is_circuit_independent(self):
        """One ceremony serves many circuits — the Section 9 point."""
        backend = PlonkSimulator()
        srs1 = backend.universal_setup()
        a = square_circuit("a")
        b = square_circuit("b")
        pk_a, vk_a = backend.setup(a)
        pk_b, vk_b = backend.setup(b)
        assert pk_a.key_id == pk_b.key_id == srs1.setup_id
        proof_a, public_a = backend.prove(pk_a, a, {"x": 2})
        proof_b, public_b = backend.prove(pk_b, b, {"x": 3})
        assert backend.verify(vk_a, public_a, proof_a)
        assert backend.verify(vk_b, public_b, proof_b)

    def test_proofs_bound_to_circuit(self):
        backend = PlonkSimulator()
        a = square_circuit("a")
        b = square_circuit("b")
        pk_a, _vk_a = backend.setup(a)
        _pk_b, vk_b = backend.setup(b)
        proof_a, public_a = backend.prove(pk_a, a, {"x": 2})
        # Same public values, same SRS — but the circuit hash differs.
        assert not backend.verify(vk_b, public_a, proof_a)

    def test_unsatisfied_statement_rejected(self):
        backend = PlonkSimulator()
        builder = CircuitBuilder(label="five")
        x = builder.input("x")
        builder.assert_eq(x, builder.constant(5))
        circuit = builder.build()
        pk, _vk = backend.setup(circuit)
        with pytest.raises(ConstraintViolation):
            backend.prove(pk, circuit, {"x": 6})

    def test_tampered_public_values_rejected(self):
        backend = PlonkSimulator()
        circuit = square_circuit()
        pk, vk = backend.setup(circuit)
        proof, public = backend.prove(pk, circuit, {"x": 6})
        lied = list(public)
        lied[-1] = 37
        assert not backend.verify(vk, lied, proof)

    def test_size_bound_enforced(self):
        backend = PlonkSimulator()
        backend.universal_setup(max_constraints=0)
        with pytest.raises(ProofError):
            backend.setup(square_circuit())

    def test_foreign_setup_rejected(self):
        backend_a = PlonkSimulator()
        backend_b = PlonkSimulator()
        circuit = square_circuit()
        pk_a, _ = backend_a.setup(circuit)
        _, vk_b = backend_b.setup(circuit)
        proof, public = backend_a.prove(pk_a, circuit, {"x": 4})
        assert not backend_b.verify(vk_b, public, proof)
