"""Tests for the Groth16 simulator and the spot-check backend."""

from __future__ import annotations

import pytest

from repro.errors import ConstraintViolation, ProofError
from repro.vc.circuit import CircuitBuilder
from repro.vc.snark import PROOF_SIZE_BYTES, Groth16Simulator, Proof
from repro.vc.spotcheck import SpotCheckBackend


def square_circuit():
    """Public statement: y is the square of private x."""
    b = CircuitBuilder(label="square")
    x = b.input("x", public=False)
    y = b.mul(x, x)
    b.make_public(y)
    return b.build()


class TestGroth16Simulator:
    def test_roundtrip(self):
        backend = Groth16Simulator()
        circuit = square_circuit()
        pk, vk = backend.setup(circuit)
        proof, public = backend.prove(pk, circuit, {"x": 7})
        assert backend.verify(vk, public, proof)
        assert 49 in public

    def test_proof_size_matches_paper(self):
        backend = Groth16Simulator()
        circuit = square_circuit()
        pk, vk = backend.setup(circuit)
        proof, _public = backend.prove(pk, circuit, {"x": 7})
        assert proof.size_bytes == PROOF_SIZE_BYTES == 312

    def test_tampered_public_values_rejected(self):
        backend = Groth16Simulator()
        circuit = square_circuit()
        pk, vk = backend.setup(circuit)
        proof, public = backend.prove(pk, circuit, {"x": 7})
        tampered = list(public)
        tampered[-1] = 50  # claim x^2 == 50
        assert not backend.verify(vk, tampered, proof)

    def test_forged_proof_rejected(self):
        backend = Groth16Simulator()
        circuit = square_circuit()
        pk, vk = backend.setup(circuit)
        _proof, public = backend.prove(pk, circuit, {"x": 7})
        forged = Proof(payload=b"\x00" * PROOF_SIZE_BYTES, key_id=vk.key_id)
        assert not backend.verify(vk, public, forged)

    def test_proof_does_not_transfer_across_setups(self):
        backend = Groth16Simulator()
        circuit = square_circuit()
        pk1, _vk1 = backend.setup(circuit)
        _pk2, vk2 = backend.setup(circuit)
        proof, public = backend.prove(pk1, circuit, {"x": 7})
        assert not backend.verify(vk2, public, proof)

    def test_unsatisfied_statement_cannot_be_proven(self):
        b = CircuitBuilder(label="always5")
        x = b.input("x")
        b.assert_eq(x, b.constant(5))
        circuit = b.build()
        backend = Groth16Simulator()
        pk, _vk = backend.setup(circuit)
        with pytest.raises(ConstraintViolation):
            backend.prove(pk, circuit, {"x": 6})

    def test_wrong_circuit_for_key_rejected(self):
        backend = Groth16Simulator()
        circuit = square_circuit()
        pk, _vk = backend.setup(circuit)
        b = CircuitBuilder(label="other")
        b.input("x")
        other = b.build()
        with pytest.raises(ProofError):
            backend.prove(pk, other, {"x": 1})


class TestSpotCheckBackend:
    def test_roundtrip(self):
        backend = SpotCheckBackend(challenges=10)
        circuit = square_circuit()
        pk, vk = backend.setup(circuit)
        proof, public = backend.prove(pk, circuit, {"x": 9})
        assert backend.verify(vk, public, proof, circuit=circuit)

    def test_tampered_public_values_rejected(self):
        backend = SpotCheckBackend(challenges=10)
        circuit = square_circuit()
        pk, vk = backend.setup(circuit)
        proof, public = backend.prove(pk, circuit, {"x": 9})
        tampered = list(public)
        tampered[-1] = 82
        assert not backend.verify(vk, tampered, proof, circuit=circuit)

    def test_tampered_opening_rejected(self):
        import dataclasses

        backend = SpotCheckBackend(challenges=10)
        circuit = square_circuit()
        pk, vk = backend.setup(circuit)
        proof, public = backend.prove(pk, circuit, {"x": 9})
        bad_openings = list(proof.openings)
        bad_openings[0] = dataclasses.replace(bad_openings[0], value=12345)
        forged = dataclasses.replace(proof, openings=tuple(bad_openings))
        assert not backend.verify(vk, public, forged, circuit=circuit)

    def test_verification_requires_circuit(self):
        backend = SpotCheckBackend(challenges=5)
        circuit = square_circuit()
        pk, vk = backend.setup(circuit)
        proof, public = backend.prove(pk, circuit, {"x": 9})
        with pytest.raises(ProofError):
            backend.verify(vk, public, proof, circuit=None)

    def test_proof_size_grows_with_openings(self):
        backend = SpotCheckBackend(challenges=10)
        circuit = square_circuit()
        pk, _vk = backend.setup(circuit)
        proof, _public = backend.prove(pk, circuit, {"x": 9})
        assert proof.size_bytes > PROOF_SIZE_BYTES  # the documented trade-off
