"""Statistical soundness of the spot-check backend.

The spot-check argument is the one *fully real* proof system in the repo;
these tests confirm a cheating prover who commits to a bad witness is
caught with the expected probability.
"""

from __future__ import annotations

import dataclasses
import hashlib

import pytest

from repro.vc.circuit import CircuitBuilder
from repro.vc.field import FIELD_PRIME
from repro.vc.merkle_commit import WitnessCommitment
from repro.vc.spotcheck import SpotCheckBackend, SpotCheckProof, _challenge_indices


def chain_circuit(length: int = 50):
    """x_{i+1} = x_i^2 + 1 for *length* steps; the final value is public."""
    builder = CircuitBuilder(label=f"chain{length}")
    x = builder.input("x", public=False)
    current = x
    for _ in range(length):
        squared = builder.mul(current, current)
        current = squared + builder.constant(1)
    builder.output(current)
    return builder.build()


def forge_proof(backend, circuit, proving_key, bad_witness, claimed_public):
    """Build a spot-check proof directly from a (possibly bad) witness."""
    commitment = WitnessCommitment(bad_witness)
    challenged = _challenge_indices(
        circuit.structural_hash(),
        commitment.root,
        claimed_public,
        len(circuit.r1cs.constraints),
        backend.challenges,
    )
    needed = set(circuit.public_indices)
    for index in challenged:
        constraint = circuit.r1cs.constraints[index]
        for lc in (constraint.a, constraint.b, constraint.c):
            needed.update(lc.terms)
    openings = tuple(commitment.open(i) for i in sorted(needed))
    return SpotCheckProof(
        root=commitment.root,
        openings=openings,
        num_constraints=len(circuit.r1cs.constraints),
        key_id=proving_key.key_id,
    )


class TestCheatingProver:
    def test_massively_wrong_witness_always_caught(self):
        backend = SpotCheckBackend(challenges=20)
        circuit = chain_circuit(50)
        pk, vk = backend.setup(circuit)
        honest = circuit.generate_witness({"x": 3})
        # Corrupt every intermediate wire; claim a bogus public output.
        bad = list(honest)
        for i in range(2, len(bad)):
            bad[i] = (bad[i] + 7) % FIELD_PRIME
        claimed = [bad[i] for i in circuit.public_indices]
        proof = forge_proof(backend, circuit, pk, bad, claimed)
        assert not backend.verify(vk, claimed, proof, circuit=circuit)

    def test_single_violation_caught_with_expected_rate(self):
        """One violated constraint out of C survives ~(1 - k/C) of the time;
        with k = C (challenge everything) it must always be caught."""
        circuit = chain_circuit(30)
        num_constraints = len(circuit.r1cs.constraints)
        backend = SpotCheckBackend(challenges=num_constraints)
        pk, vk = backend.setup(circuit)
        honest = circuit.generate_witness({"x": 5})
        bad = list(honest)
        bad[len(bad) // 2] = (bad[len(bad) // 2] + 1) % FIELD_PRIME
        claimed = [bad[i] for i in circuit.public_indices]
        proof = forge_proof(backend, circuit, pk, bad, claimed)
        assert not backend.verify(vk, claimed, proof, circuit=circuit)

    def test_honest_witness_with_lying_public_values_caught(self):
        backend = SpotCheckBackend(challenges=10)
        circuit = chain_circuit(20)
        pk, vk = backend.setup(circuit)
        proof, public = backend.prove(pk, circuit, {"x": 2})
        lied = list(public)
        lied[-1] = (lied[-1] + 1) % FIELD_PRIME
        assert not backend.verify(vk, lied, proof, circuit=circuit)

    def test_root_binds_witness(self):
        backend = SpotCheckBackend(challenges=10)
        circuit = chain_circuit(20)
        pk, vk = backend.setup(circuit)
        proof, public = backend.prove(pk, circuit, {"x": 2})
        forged = dataclasses.replace(proof, root=hashlib.sha256(b"x").digest())
        assert not backend.verify(vk, public, forged, circuit=circuit)

    def test_challenges_are_deterministic_fiat_shamir(self):
        circuit = chain_circuit(20)
        args = (circuit.structural_hash(), b"r" * 32, (1, 2), 40, 10)
        assert _challenge_indices(*args) == _challenge_indices(*args)
        other = _challenge_indices(circuit.structural_hash(), b"s" * 32, (1, 2), 40, 10)
        assert other != _challenge_indices(*args)
