"""Tests for witness Merkle commitments (spot-check substrate)."""

from __future__ import annotations

from repro.vc.merkle_commit import WitnessCommitment


class TestWitnessCommitment:
    def test_open_and_verify(self):
        commitment = WitnessCommitment([10, 20, 30, 40])
        opening = commitment.open(2)
        assert opening.value == 30
        assert opening.verify(commitment.root)

    def test_opening_bound_to_position(self):
        commitment = WitnessCommitment([10, 20, 30, 40])
        opening = commitment.open(1)
        import dataclasses

        moved = dataclasses.replace(opening, index=2)
        assert not moved.verify(commitment.root)

    def test_opening_bound_to_value(self):
        commitment = WitnessCommitment([10, 20, 30, 40])
        opening = commitment.open(1)
        import dataclasses

        lied = dataclasses.replace(opening, value=99)
        assert not lied.verify(commitment.root)

    def test_different_witnesses_different_roots(self):
        a = WitnessCommitment([1, 2, 3])
        b = WitnessCommitment([1, 2, 4])
        assert a.root != b.root

    def test_size_accounting(self):
        commitment = WitnessCommitment(list(range(64)))
        opening = commitment.open(5)
        assert opening.size_bytes > 32  # value + path
