"""Tests for the Max/Min/Clamp DSL extensions."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.vc.compiler import CircuitCompiler
from repro.vc.field import to_field
from repro.vc.program import (
    Clamp,
    Const,
    Emit,
    KeyTemplate,
    Max,
    Min,
    Param,
    Program,
    ReadStmt,
    ReadVal,
    WriteStmt,
)

CAPPED_DEPOSIT = Program(
    name="capped_deposit",
    params=("k", "amount", "cap"),
    statements=(
        ReadStmt("balance", KeyTemplate(("acct", Param("k")))),
        WriteStmt(
            KeyTemplate(("acct", Param("k"))),
            Min(Max(ReadVal("balance"), Const(0)), Param("cap")),
        ),
        Emit(Max(ReadVal("balance"), Param("amount"))),
    ),
)


class TestInterpreter:
    def test_max_min_eval(self):
        result = CAPPED_DEPOSIT.execute(
            {"k": 1, "amount": 50, "cap": 80}, lambda key: 120
        )
        assert dict(result.writes) == {("acct", 1): 80}
        assert result.outputs == (120,)

    def test_clamp_sugar(self):
        program = Program(
            name="clamp_demo",
            params=("x",),
            statements=(Emit(Clamp(Param("x"), Const(10), Const(20))),),
        )
        assert program.execute({"x": 5}, lambda k: 0).outputs == (10,)
        assert program.execute({"x": 15}, lambda k: 0).outputs == (15,)
        assert program.execute({"x": 99}, lambda k: 0).outputs == (20,)


class TestCircuitAgreement:
    @given(
        st.integers(min_value=0, max_value=2**31 - 1),
        st.integers(min_value=0, max_value=2**31 - 1),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_capped_deposit_agrees(self, balance, amount, cap):
        compiler = CircuitCompiler()
        compiled = compiler.compile_program(CAPPED_DEPOSIT)
        params = {"k": 1, "amount": amount, "cap": cap}
        interpreted = CAPPED_DEPOSIT.execute(params, lambda key: balance)
        binding = compiler.bind(compiled, params, {"balance": balance})
        assert binding.write_values == tuple(
            to_field(v) for _k, v in interpreted.writes
        )
        assert binding.outputs == tuple(to_field(v) for v in interpreted.outputs)

    def test_minmax_constraint_cost(self):
        compiled = CircuitCompiler().compile_program(CAPPED_DEPOSIT)
        # Each Max/Min costs a comparison (range decompositions) + a select.
        assert compiled.total_constraints > 100
