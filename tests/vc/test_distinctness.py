"""Tests for the in-circuit batch-disjointness check (Section 7.1)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConstraintViolation
from repro.vc.circuit import CircuitBuilder


def distinctness_circuit(count: int):
    builder = CircuitBuilder(label=f"distinct{count}")
    inputs = [builder.input(f"x{i}") for i in range(count)]
    builder.assert_all_distinct(inputs)
    return builder.build()


class TestAssertAllDistinct:
    def test_distinct_keys_prove(self):
        circuit = distinctness_circuit(4)
        circuit.generate_witness({f"x{i}": 100 + i for i in range(4)})

    def test_duplicate_keys_cannot_prove(self):
        circuit = distinctness_circuit(3)
        with pytest.raises((ConstraintViolation, ZeroDivisionError)):
            circuit.generate_witness({"x0": 5, "x1": 7, "x2": 5})

    def test_constraint_count_quadratic(self):
        # One aux + one constraint per pair.
        assert distinctness_circuit(5).field_constraints == 10

    @given(st.lists(st.integers(min_value=0, max_value=10**9), min_size=2, max_size=6))
    @settings(max_examples=40, deadline=None)
    def test_matches_python_distinctness(self, values):
        circuit = distinctness_circuit(len(values))
        inputs = {f"x{i}": value for i, value in enumerate(values)}
        if len(set(values)) == len(values):
            circuit.generate_witness(inputs)
        else:
            with pytest.raises((ConstraintViolation, ZeroDivisionError)):
                circuit.generate_witness(inputs)
