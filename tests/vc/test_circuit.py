"""Tests for the circuit builder and R1CS layer."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConstraintViolation
from repro.vc.circuit import CircuitBuilder, ForeignGadget, LinearCombination
from repro.vc.field import FIELD_PRIME


def build_product_circuit():
    """x * y = z with z exposed."""
    b = CircuitBuilder(label="product")
    x = b.input("x")
    y = b.input("y")
    z = b.mul(x, y)
    b.make_public(z)
    return b.build()


class TestLinearCombination:
    def test_add_and_scale(self):
        a = LinearCombination({1: 2, 2: 3})
        b = LinearCombination({2: 4, 3: 1})
        c = a + b
        assert c.terms == {1: 2, 2: 7, 3: 1}
        assert a.scale(2).terms == {1: 4, 2: 6}

    def test_zero_coefficients_dropped(self):
        a = LinearCombination({1: 5})
        b = LinearCombination({1: -5})
        assert (a + b).terms == {}

    def test_evaluate(self):
        lc = LinearCombination({0: 7, 1: 2})
        assert lc.evaluate([1, 10]) == 27


class TestBasicGates:
    def test_mul_gate(self):
        circuit = build_product_circuit()
        w = circuit.generate_witness({"x": 6, "y": 7})
        assert w[circuit.public_indices[-1]] == 42

    def test_unsatisfied_raises(self):
        b = CircuitBuilder()
        x = b.input("x")
        b.assert_eq(x, b.constant(5))
        circuit = b.build()
        circuit.generate_witness({"x": 5})
        with pytest.raises(ConstraintViolation):
            circuit.generate_witness({"x": 6})

    def test_missing_input_raises(self):
        circuit = build_product_circuit()
        with pytest.raises(ConstraintViolation):
            circuit.generate_witness({"x": 1})

    def test_assert_bool(self):
        b = CircuitBuilder()
        x = b.input("x")
        b.assert_bool(x)
        circuit = b.build()
        circuit.generate_witness({"x": 0})
        circuit.generate_witness({"x": 1})
        with pytest.raises(ConstraintViolation):
            circuit.generate_witness({"x": 2})

    def test_is_zero_gadget(self):
        b = CircuitBuilder()
        x = b.input("x")
        bit = b.is_zero(x)
        b.make_public(bit)
        circuit = b.build()
        assert circuit.generate_witness({"x": 0})[circuit.public_indices[-1]] == 1
        assert circuit.generate_witness({"x": 9})[circuit.public_indices[-1]] == 0

    def test_assert_nonzero(self):
        b = CircuitBuilder()
        x = b.input("x")
        y = b.input("y")
        b.assert_nonzero(x - y)
        circuit = b.build()
        circuit.generate_witness({"x": 3, "y": 4})
        with pytest.raises((ConstraintViolation, ZeroDivisionError)):
            circuit.generate_witness({"x": 4, "y": 4})

    def test_select(self):
        b = CircuitBuilder()
        bit = b.input("bit")
        a = b.input("a")
        c = b.input("c")
        b.assert_bool(bit)
        out = b.output(b.select(bit, a, c))
        circuit = b.build()
        idx = circuit.public_indices[-1]
        assert circuit.generate_witness({"bit": 1, "a": 10, "c": 20})[idx] == 10
        assert circuit.generate_witness({"bit": 0, "a": 10, "c": 20})[idx] == 20


class TestComparison:
    @given(
        st.integers(min_value=0, max_value=2**32 - 1),
        st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_less_than_matches_python(self, a, c):
        b = CircuitBuilder()
        x = b.input("x")
        y = b.input("y")
        b.decompose_bits(x, 32)
        b.decompose_bits(y, 32)
        lt = b.less_than(x, y, width=32)
        b.make_public(lt)
        circuit = b.build()
        w = circuit.generate_witness({"x": a, "y": c})
        assert w[circuit.public_indices[-1]] == (1 if a < c else 0)

    def test_decompose_rejects_oversized(self):
        b = CircuitBuilder()
        x = b.input("x")
        b.decompose_bits(x, 8)
        circuit = b.build()
        circuit.generate_witness({"x": 255})
        with pytest.raises(ConstraintViolation):
            circuit.generate_witness({"x": 256})


class TestForeignGadgets:
    def test_gadget_counts_and_runs(self):
        b = CircuitBuilder()
        b.input("x")
        seen = {}

        def evaluator(ctx):
            seen.update(ctx)
            return ctx.get("ok", False)

        b.add_gadget(ForeignGadget(name="mem", constraint_count=100, evaluator=evaluator))
        circuit = b.build()
        assert circuit.foreign_constraints == 100
        assert circuit.total_constraints == circuit.field_constraints + 100
        circuit.generate_witness({"x": 1}, context={"ok": True})
        assert seen["ok"] is True
        with pytest.raises(ConstraintViolation):
            circuit.generate_witness({"x": 1}, context={"ok": False})


class TestStructuralHash:
    def test_same_structure_same_hash(self):
        assert build_product_circuit().structural_hash() == build_product_circuit().structural_hash()

    def test_different_structure_different_hash(self):
        b = CircuitBuilder(label="product")
        x = b.input("x")
        y = b.input("y")
        z = b.mul(x, y)
        b.assert_eq(z, b.constant(0))
        other = b.build()
        assert other.structural_hash() != build_product_circuit().structural_hash()

    def test_gadget_changes_hash(self):
        b = CircuitBuilder(label="product")
        x = b.input("x")
        y = b.input("y")
        b.make_public(b.mul(x, y))
        b.add_gadget(ForeignGadget("mem", 10, lambda ctx: True))
        assert b.build().structural_hash() != build_product_circuit().structural_hash()

    def test_label_changes_hash(self):
        b = CircuitBuilder(label="other-label")
        x = b.input("x")
        y = b.input("y")
        b.make_public(b.mul(x, y))
        assert b.build().structural_hash() != build_product_circuit().structural_hash()


class TestFieldSemantics:
    def test_values_reduced_mod_p(self):
        b = CircuitBuilder()
        x = b.input("x")
        b.make_public(b.mul(x, x))
        circuit = b.build()
        w = circuit.generate_witness({"x": FIELD_PRIME + 3})
        assert w[circuit.public_indices[-1]] == 9
