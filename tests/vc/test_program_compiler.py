"""Tests for the stored-procedure DSL and transaction compiler.

The central property: the interpreter and the compiled circuit agree on
every write value and output, for random parameters and database states.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TransactionError
from repro.vc.compiler import CircuitCompiler
from repro.vc.field import to_field
from repro.vc.program import (
    Add,
    Const,
    Emit,
    Eq,
    If,
    KeyTemplate,
    Lt,
    Mul,
    Param,
    Program,
    ReadStmt,
    ReadVal,
    Sub,
    WriteStmt,
)


def transfer_program() -> Program:
    """A bank transfer: move `amount` from account `src` to account `dst`."""
    return Program(
        name="transfer",
        params=("src", "dst", "amount"),
        statements=(
            ReadStmt("src_bal", KeyTemplate(("acct", Param("src")))),
            ReadStmt("dst_bal", KeyTemplate(("acct", Param("dst")))),
            WriteStmt(
                KeyTemplate(("acct", Param("src"))),
                Sub(ReadVal("src_bal"), Param("amount")),
            ),
            WriteStmt(
                KeyTemplate(("acct", Param("dst"))),
                Add(ReadVal("dst_bal"), Param("amount")),
            ),
            Emit(Add(ReadVal("src_bal"), ReadVal("dst_bal"))),
        ),
    )


def conditional_program() -> Program:
    """Writes max(read, param) — exercises Lt/If/Eq paths."""
    return Program(
        name="maxout",
        params=("k", "threshold"),
        statements=(
            ReadStmt("current", KeyTemplate(("row", Param("k")))),
            WriteStmt(
                KeyTemplate(("row", Param("k"))),
                If(
                    Lt(ReadVal("current"), Param("threshold")),
                    Param("threshold"),
                    ReadVal("current"),
                ),
            ),
            Emit(Eq(ReadVal("current"), Param("threshold"))),
        ),
    )


class TestInterpreter:
    def test_transfer_semantics(self):
        program = transfer_program()
        state = {("acct", 1): 100, ("acct", 2): 50}
        result = program.execute({"src": 1, "dst": 2, "amount": 30}, state.__getitem__)
        assert dict(result.writes) == {("acct", 1): 70, ("acct", 2): 80}
        assert result.outputs == (150,)
        assert [r[1] for r in result.reads] == [("acct", 1), ("acct", 2)]

    def test_read_your_writes(self):
        program = Program(
            name="ryw",
            params=("k",),
            statements=(
                WriteStmt(KeyTemplate(("t", Param("k"))), Const(42)),
                ReadStmt("back", KeyTemplate(("t", Param("k")))),
                Emit(ReadVal("back")),
            ),
        )
        result = program.execute({"k": 7}, lambda key: 0)
        assert result.outputs == (42,)

    def test_key_resolution(self):
        template = KeyTemplate(("stock", Param("w"), Param("i")))
        assert template.resolve({"w": 3, "i": 9}) == ("stock", 3, 9)
        with pytest.raises(TransactionError):
            template.resolve({"w": 3})

    def test_unknown_param_raises(self):
        program = transfer_program()
        with pytest.raises(TransactionError):
            program.execute({"src": 1, "dst": 2}, lambda key: 0)

    def test_read_and_write_key_lists(self):
        program = transfer_program()
        params = {"src": 1, "dst": 2, "amount": 30}
        assert program.read_keys(params) == [("acct", 1), ("acct", 2)]
        assert program.write_keys(params) == [("acct", 1), ("acct", 2)]


class TestCompiler:
    def test_compile_caches_templates(self):
        compiler = CircuitCompiler()
        a = compiler.compile_program(transfer_program())
        b = compiler.compile_program(transfer_program())
        assert a is b

    def test_structural_signature_stable(self):
        c1 = CircuitCompiler().compile_program(transfer_program())
        c2 = CircuitCompiler().compile_program(transfer_program())
        assert c1.structural_signature == c2.structural_signature

    def test_different_programs_different_signature(self):
        compiler = CircuitCompiler()
        a = compiler.compile_program(transfer_program())
        b = compiler.compile_program(conditional_program())
        assert a.structural_signature != b.structural_signature

    def test_binding_matches_interpreter(self):
        program = transfer_program()
        compiler = CircuitCompiler()
        compiled = compiler.compile_program(program)
        params = {"src": 1, "dst": 2, "amount": 30}
        reads = {"src_bal": 100, "dst_bal": 50}
        binding = compiler.bind(compiled, params, reads)
        assert binding.write_values == (70, 80)
        assert binding.outputs == (150,)

    def test_binding_missing_read_raises(self):
        compiler = CircuitCompiler()
        compiled = compiler.compile_program(transfer_program())
        with pytest.raises(TransactionError):
            compiler.bind(compiled, {"src": 1, "dst": 2, "amount": 3}, {"src_bal": 1})

    @given(
        st.integers(min_value=0, max_value=2**30),
        st.integers(min_value=0, max_value=2**30),
        st.integers(min_value=0, max_value=2**20),
    )
    @settings(max_examples=25, deadline=None)
    def test_transfer_agrees_with_interpreter(self, src_bal, dst_bal, amount):
        program = transfer_program()
        compiler = CircuitCompiler()
        compiled = compiler.compile_program(program)
        params = {"src": 1, "dst": 2, "amount": amount}
        state = {("acct", 1): src_bal, ("acct", 2): dst_bal}
        interpreted = program.execute(params, state.__getitem__)
        binding = compiler.bind(
            compiled, params, {"src_bal": src_bal, "dst_bal": dst_bal}
        )
        for (key, value), circuit_value in zip(interpreted.writes, binding.write_values):
            assert to_field(value) == circuit_value
        for value, circuit_value in zip(interpreted.outputs, binding.outputs):
            assert to_field(value) == circuit_value

    @given(
        st.integers(min_value=0, max_value=2**31 - 1),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=20, deadline=None)
    def test_conditional_agrees_with_interpreter(self, current, threshold):
        program = conditional_program()
        compiler = CircuitCompiler()
        compiled = compiler.compile_program(program)
        params = {"k": 5, "threshold": threshold}
        interpreted = program.execute(params, lambda key: current)
        binding = compiler.bind(compiled, params, {"current": current})
        assert binding.write_values == tuple(
            to_field(v) for (_k, v) in interpreted.writes
        )
        assert binding.outputs == tuple(to_field(v) for v in interpreted.outputs)

    def test_constraint_count_positive(self):
        compiled = CircuitCompiler().compile_program(conditional_program())
        assert compiled.total_constraints > 30  # comparisons dominate
