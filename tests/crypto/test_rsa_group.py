"""Tests for the RSA group and Bezout helper."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.rsa_group import RSAGroup, bezout, default_group
from repro.errors import CryptoError


class TestBezout:
    @given(
        st.integers(min_value=1, max_value=10**30),
        st.integers(min_value=1, max_value=10**30),
    )
    @settings(max_examples=200)
    def test_identity(self, x, y):
        a, b, g = bezout(x, y)
        assert a * x + b * y == g
        assert g == math.gcd(x, y)

    def test_coprime_gives_unit(self):
        a, b, g = bezout(15, 28)
        assert g == 1
        assert a * 15 + b * 28 == 1


class TestRSAGroup:
    def test_generation_deterministic(self):
        g1 = RSAGroup.generate(bits=256, seed=b"s")
        g2 = RSAGroup.generate(bits=256, seed=b"s")
        assert g1.modulus == g2.modulus
        assert g1.generator == g2.generator

    def test_distinct_seeds_distinct_groups(self):
        g1 = RSAGroup.generate(bits=256, seed=b"s1")
        g2 = RSAGroup.generate(bits=256, seed=b"s2")
        assert g1.modulus != g2.modulus

    def test_modulus_size(self, group):
        assert group.modulus.bit_length() in (511, 512)

    def test_power_matches_builtin(self, group):
        assert group.power(5, 1000) == pow(5, 1000, group.modulus)

    def test_negative_exponent(self, group):
        x = group.power(group.generator, 12345)
        assert group.mul(group.power(x, -1), x) == 1

    def test_trapdoor_agrees_with_power(self, group):
        exponent = 3**200  # large enough that reduction matters
        assert group.trapdoor_power(group.generator, exponent) == group.power(
            group.generator, exponent
        )

    def test_public_view_drops_trapdoor(self, group):
        public = group.public_view()
        assert not public.has_trapdoor
        with pytest.raises(CryptoError):
            public.trapdoor_power(2, 10)
        # But the group operations still agree.
        assert public.power(7, 77) == group.power(7, 77)

    def test_default_group_cached(self):
        assert default_group(bits=512) is default_group(bits=512)

    def test_invalid_constructions(self):
        with pytest.raises(CryptoError):
            RSAGroup(modulus=10, generator=3)
        with pytest.raises(CryptoError):
            RSAGroup(modulus=77, generator=1)
