"""Tests for the weakly-binding authenticated dictionary (paper Section 5.3)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.authdict import (
    AuthenticatedDictionary,
    LookupProof,
    NonMembershipProof,
    pair_representative,
)
from repro.errors import CryptoError

PRIME_BITS = 64  # smaller primes keep the test suite fast


@pytest.fixture()
def ad(group) -> AuthenticatedDictionary:
    return AuthenticatedDictionary(
        group, initial={"alice": 10, "bob": 20, "carol": 30}, prime_bits=PRIME_BITS
    )


class TestCommit:
    def test_commit_matches_incremental_state(self, group, ad):
        fresh = AuthenticatedDictionary.commit(
            group, {"alice": 10, "bob": 20, "carol": 30}, prime_bits=PRIME_BITS
        )
        assert fresh == ad.digest

    def test_commit_order_independent(self, group):
        d1 = AuthenticatedDictionary.commit(group, {"a": 1, "b": 2}, prime_bits=PRIME_BITS)
        d2 = AuthenticatedDictionary.commit(group, {"b": 2, "a": 1}, prime_bits=PRIME_BITS)
        assert d1 == d2

    def test_empty_dictionary_digest_is_generator(self, group):
        ad = AuthenticatedDictionary(group, prime_bits=PRIME_BITS)
        assert ad.digest == group.generator

    def test_value_change_changes_digest(self, group):
        d1 = AuthenticatedDictionary.commit(group, {"a": 1}, prime_bits=PRIME_BITS)
        d2 = AuthenticatedDictionary.commit(group, {"a": 2}, prime_bits=PRIME_BITS)
        assert d1 != d2


class TestPairRepresentative:
    def test_three_prime_structure(self):
        h = pair_representative("k", "v", bits=PRIME_BITS)
        # Product of three 64-bit primes: around 192 bits.
        assert 3 * (PRIME_BITS - 1) <= h.bit_length() <= 3 * PRIME_BITS

    def test_binding_to_both_components(self):
        assert pair_representative("k", 1, PRIME_BITS) != pair_representative(
            "k", 2, PRIME_BITS
        )
        assert pair_representative("k1", 1, PRIME_BITS) != pair_representative(
            "k2", 1, PRIME_BITS
        )


class TestLookup:
    def test_single_lookup_roundtrip(self, ad):
        proof = ad.prove_lookup(["alice"])
        assert ad.ver_lookup(ad.digest, {"alice": 10}, proof)

    def test_aggregated_lookup_roundtrip(self, ad):
        proof = ad.prove_lookup(["alice", "carol"])
        assert ad.ver_lookup(ad.digest, {"alice": 10, "carol": 30}, proof)

    def test_wrong_value_rejected(self, ad):
        proof = ad.prove_lookup(["alice"])
        assert not ad.ver_lookup(ad.digest, {"alice": 11}, proof)

    def test_wrong_key_rejected(self, ad):
        proof = ad.prove_lookup(["alice"])
        assert not ad.ver_lookup(ad.digest, {"bob": 10}, proof)

    def test_proof_does_not_transfer_between_digests(self, group, ad):
        proof = ad.prove_lookup(["alice"])
        other = AuthenticatedDictionary.commit(group, {"alice": 10}, prime_bits=PRIME_BITS)
        assert not ad.ver_lookup(other, {"alice": 10}, proof)

    def test_lookup_of_missing_key_raises(self, ad):
        with pytest.raises(CryptoError):
            ad.prove_lookup(["mallory"])

    def test_forged_witness_rejected(self, group, ad):
        forged = LookupProof(witness=group.mul(ad.prove_lookup(["alice"]).witness, 3))
        assert not ad.ver_lookup(ad.digest, {"alice": 10}, forged)


class TestUpdate:
    def test_update_existing_key(self, group, ad):
        old_digest = ad.digest
        new_digest, proof = ad.update({"alice": 99})
        assert new_digest != old_digest
        assert ad.get("alice") == 99
        # The client can roll the digest forward from the proof alone.
        assert ad.digest_after_update(proof, {"alice": 99}) == new_digest

    def test_update_matches_fresh_commit(self, group, ad):
        ad.update({"alice": 99, "bob": 88})
        fresh = AuthenticatedDictionary.commit(
            group, {"alice": 99, "bob": 88, "carol": 30}, prime_bits=PRIME_BITS
        )
        assert fresh == ad.digest

    def test_insert_new_key(self, group, ad):
        new_digest, proof = ad.update({"dave": 40})
        fresh = AuthenticatedDictionary.commit(
            group,
            {"alice": 10, "bob": 20, "carol": 30, "dave": 40},
            prime_bits=PRIME_BITS,
        )
        assert new_digest == fresh
        assert ad.digest_after_update(proof, {"dave": 40}) == new_digest

    def test_mixed_insert_and_update(self, group, ad):
        new_digest, proof = ad.update({"alice": 1, "dave": 2})
        assert ad.digest_after_update(proof, {"alice": 1, "dave": 2}) == new_digest

    def test_old_lookup_proofs_invalidated_by_update(self, ad):
        proof = ad.prove_lookup(["bob"])
        ad.update({"alice": 99})
        assert not ad.ver_lookup(ad.digest, {"bob": 20}, proof)


class TestNoKey:
    def test_nonexistent_key(self, ad):
        proof = ad.prove_no_key(["mallory"])
        assert ad.ver_no_key(ad.digest, ["mallory"], proof)

    def test_aggregated_nonexistence(self, ad):
        keys = ["m1", "m2", "m3"]
        proof = ad.prove_no_key(keys)
        assert ad.ver_no_key(ad.digest, keys, proof)

    def test_existing_key_cannot_be_proven_absent(self, ad):
        with pytest.raises(CryptoError):
            ad.prove_no_key(["alice"])

    def test_forged_nonexistence_rejected(self, ad):
        forged = NonMembershipProof(a=1, b=1)
        assert not ad.ver_no_key(ad.digest, ["alice"], forged)

    def test_nokey_proof_stops_working_after_insert(self, ad):
        proof = ad.prove_no_key(["dave"])
        ad.update({"dave": 40})
        assert not ad.ver_no_key(ad.digest, ["dave"], proof)

    def test_key_deleted_history_remains(self, ad):
        # Once written, a key was "previously accessed": after updates the
        # digest no longer admits the stale non-membership proof.
        ad.update({"eve": 1})
        with pytest.raises(CryptoError):
            ad.prove_no_key(["eve"])


class TestPropertyBased:
    @given(
        st.dictionaries(
            st.integers(min_value=0, max_value=50),
            st.integers(min_value=0, max_value=1000),
            min_size=1,
            max_size=8,
        )
    )
    @settings(max_examples=20, deadline=None)
    def test_lookup_roundtrip_random_dicts(self, group, contents):
        ad = AuthenticatedDictionary(group, initial=contents, prime_bits=PRIME_BITS)
        keys = list(contents)[: max(1, len(contents) // 2)]
        proof = ad.prove_lookup(keys)
        assert ad.ver_lookup(ad.digest, {k: contents[k] for k in keys}, proof)

    @given(
        st.dictionaries(
            st.integers(min_value=0, max_value=20),
            st.integers(min_value=0, max_value=100),
            min_size=1,
            max_size=5,
        ),
        st.dictionaries(
            st.integers(min_value=0, max_value=20),
            st.integers(min_value=101, max_value=200),
            min_size=1,
            max_size=5,
        ),
    )
    @settings(max_examples=20, deadline=None)
    def test_update_always_matches_commit(self, group, initial, changes):
        ad = AuthenticatedDictionary(group, initial=initial, prime_bits=PRIME_BITS)
        ad.update(changes)
        merged = {**initial, **changes}
        fresh = AuthenticatedDictionary.commit(group, merged, prime_bits=PRIME_BITS)
        assert fresh == ad.digest
