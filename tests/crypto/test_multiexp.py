"""Tests for the multi-exponentiation and fixed-base window kernels."""

from __future__ import annotations

import random
import threading

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.cache import clear_prime_caches, generator_fixed_base
from repro.crypto.multiexp import FixedBaseWindow, multiexp
from repro.crypto.rsa_group import default_group


def _reference(pairs, modulus):
    out = 1
    for base, exponent in pairs:
        out = out * pow(base, exponent, modulus) % modulus
    return out


class TestMultiexp:
    def test_empty_and_singleton(self, group):
        n = group.modulus
        assert multiexp([], n) == 1
        assert multiexp([(group.generator, 0)], n) == 1
        assert multiexp([(group.generator, 7)], n) == pow(group.generator, 7, n)

    def test_matches_reference_on_random_batches(self, group):
        n = group.modulus
        rng = random.Random(11)
        for size in (2, 3, 8, 16, 33):
            pairs = [
                (rng.randrange(2, n), rng.getrandbits(128) | 1) for _ in range(size)
            ]
            assert multiexp(pairs, n) == _reference(pairs, n)

    def test_mixed_exponent_sizes(self, group):
        n = group.modulus
        rng = random.Random(13)
        pairs = [
            (rng.randrange(2, n), rng.getrandbits(bits) | 1)
            for bits in (1, 8, 64, 128, 512, 1500)
        ]
        assert multiexp(pairs, n) == _reference(pairs, n)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.tuples(st.integers(2, 2**64), st.integers(0, 2**130)), max_size=8))
    def test_property_matches_reference(self, pairs):
        n = default_group(bits=512).modulus
        assert multiexp(pairs, n) == _reference(pairs, n)


class TestFixedBaseWindow:
    def test_matches_pow_across_exponent_sizes(self, group):
        n = group.modulus
        window = FixedBaseWindow(group.generator, n)
        rng = random.Random(17)
        for bits in (1, 4, 63, 128, 500, 3000, 12000):
            e = rng.getrandbits(bits) | (1 << (bits - 1)) if bits > 1 else 1
            assert window.power(e) == pow(group.generator, e, n)

    def test_zero_and_negative_exponents(self, group):
        n = group.modulus
        window = FixedBaseWindow(group.generator, n)
        assert window.power(0) == 1
        e = 12345
        expected = pow(pow(group.generator, -1, n), e, n)
        assert window.power(-e) == expected

    def test_table_grows_lazily(self, group):
        window = FixedBaseWindow(group.generator, group.modulus)
        assert window.table_entries == 1
        window.power(1 << 100)
        grown = window.table_entries
        assert grown > 1
        window.power(3)  # small exponent must not shrink or grow the table
        assert window.table_entries == grown

    def test_concurrent_evaluation_is_consistent(self, group):
        n = group.modulus
        window = FixedBaseWindow(group.generator, n)
        rng = random.Random(23)
        exponents = [rng.getrandbits(2048) for _ in range(16)]
        expected = [pow(group.generator, e, n) for e in exponents]
        results: dict[int, list[int]] = {}

        def worker(tid: int):
            results[tid] = [window.power(e) for e in exponents]

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for got in results.values():
            assert got == expected


class TestRegistry:
    def test_registry_shares_one_window_per_group(self, group):
        clear_prime_caches()
        first = generator_fixed_base(
            group.modulus,
            group.generator,
            lambda: FixedBaseWindow(group.generator, group.modulus),
        )
        second = generator_fixed_base(
            group.modulus,
            group.generator,
            lambda: FixedBaseWindow(group.generator, group.modulus),
        )
        assert first is second

    def test_group_power_routes_through_registry(self, group):
        clear_prime_caches()
        e = (1 << 300) + 12345
        expected = pow(group.generator, e, group.modulus)
        assert group.power(group.generator, e) == expected
        window = generator_fixed_base(
            group.modulus,
            group.generator,
            lambda: FixedBaseWindow(group.generator, group.modulus),
        )
        # The large generator power above must have populated the shared table.
        assert window.table_entries > 1

    def test_epoch_bump_drops_windows(self, group):
        from repro.crypto.cache import bump_prime_cache_epoch

        first = generator_fixed_base(
            group.modulus,
            group.generator,
            lambda: FixedBaseWindow(group.generator, group.modulus),
        )
        bump_prime_cache_epoch()
        second = generator_fixed_base(
            group.modulus,
            group.generator,
            lambda: FixedBaseWindow(group.generator, group.modulus),
        )
        assert first is not second
