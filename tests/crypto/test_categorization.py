"""Tests for the prime categorization scheme (paper Section 5.1)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.categorization import (
    CATEGORY_KEY,
    CATEGORY_RELATION,
    CATEGORY_RESIDUES,
    CATEGORY_VALUE,
    category_of,
    sample_category_prime,
    sample_certified_category_prime,
    verify_category,
)
from repro.crypto.primes import is_probable_prime
from repro.errors import CategoryError

ALL_CATEGORIES = (CATEGORY_KEY, CATEGORY_VALUE, CATEGORY_RELATION)


class TestSample:
    @pytest.mark.parametrize("category", ALL_CATEGORIES)
    def test_sample_lands_in_category(self, category):
        p = sample_category_prime(128, category, b"nonce")
        assert verify_category(p, category)

    @pytest.mark.parametrize("category", ALL_CATEGORIES)
    def test_sample_deterministic(self, category):
        assert sample_category_prime(128, category, "k1") == sample_category_prime(
            128, category, "k1"
        )

    def test_categories_disjoint_on_same_nonce(self):
        primes = {sample_category_prime(128, c, b"same") for c in ALL_CATEGORIES}
        assert len(primes) == 3
        for category in ALL_CATEGORIES:
            p = sample_category_prime(128, category, b"same")
            for other in ALL_CATEGORIES:
                if other != category:
                    assert not verify_category(p, other)

    def test_unknown_category_rejected(self):
        with pytest.raises(CategoryError):
            sample_category_prime(128, 3, b"nonce")
        with pytest.raises(CategoryError):
            verify_category(17, 9)

    @given(st.integers(min_value=0, max_value=2**64))
    @settings(max_examples=50, deadline=None)
    def test_sample_always_prime_and_full_size(self, nonce):
        p = sample_category_prime(96, CATEGORY_KEY, nonce)
        assert is_probable_prime(p)
        assert p.bit_length() == 96


class TestVerify:
    def test_correctness_definition(self):
        # Definition 3: Verify(Sample(lam, i, nonce), i) == yes always.
        for category in ALL_CATEGORIES:
            for nonce in range(20):
                p = sample_category_prime(80, category, nonce)
                assert verify_category(p, category)

    def test_soundness_rejects_composites(self):
        # Definition 4: a composite in the right residue class is rejected.
        composite = 7 * 23  # 161 = 1 (mod 8)
        assert composite % 8 in CATEGORY_RESIDUES[CATEGORY_KEY]
        assert not verify_category(composite, CATEGORY_KEY)

    def test_soundness_rejects_wrong_residue(self):
        # 13 = 5 (mod 8) is a relation prime, not a value prime.
        assert verify_category(13, CATEGORY_RELATION)
        assert not verify_category(13, CATEGORY_VALUE)

    def test_paper_examples(self):
        # Paper: 17 in P1 (keys), 11 in P2 (values: 3 mod 8), 13 in P3 (5 mod 8).
        assert verify_category(17, CATEGORY_KEY)
        assert verify_category(11, CATEGORY_VALUE)
        assert verify_category(13, CATEGORY_RELATION)


class TestCategoryOf:
    def test_partition_covers_all_odd_primes(self):
        for p in (3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 97, 101):
            assert category_of(p) in ALL_CATEGORIES

    def test_two_and_composites_have_no_category(self):
        assert category_of(2) is None
        assert category_of(15) is None


class TestCertifiedSample:
    def test_certified_prime_matches_plain_category(self):
        certified = sample_certified_category_prime(64, CATEGORY_VALUE, b"n")
        assert certified.verify(CATEGORY_VALUE)
        assert certified.prime % 8 == 3

    def test_certificate_chain_is_checkable(self):
        certified = sample_certified_category_prime(64, CATEGORY_KEY, b"n")
        certified.certificate.check()

    def test_deterministic(self):
        a = sample_certified_category_prime(64, CATEGORY_RELATION, 42)
        b = sample_certified_category_prime(64, CATEGORY_RELATION, 42)
        assert a.prime == b.prime
