"""Tests for Wesolowski proofs of exponentiation."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.poe import prove_exponentiation, verify_exponentiation


class TestPoE:
    def test_roundtrip_small(self, group):
        result, proof = prove_exponentiation(group, group.generator, 123456789)
        assert verify_exponentiation(group, group.generator, 123456789, result, proof)

    def test_roundtrip_huge_exponent(self, group):
        # An exponent far larger than the group order — the typical
        # accumulator case (product of hundreds of 128-bit primes).
        exponent = 1
        for i in range(50):
            exponent *= (1 << 127) + 2 * i + 1
        result, proof = prove_exponentiation(group, group.generator, exponent)
        assert verify_exponentiation(group, group.generator, exponent, result, proof)

    def test_wrong_result_rejected(self, group):
        result, proof = prove_exponentiation(group, group.generator, 98765)
        bad = group.mul(result, group.generator)
        assert not verify_exponentiation(group, group.generator, 98765, bad, proof)

    def test_wrong_exponent_rejected(self, group):
        result, proof = prove_exponentiation(group, group.generator, 98765)
        assert not verify_exponentiation(group, group.generator, 98766, result, proof)

    def test_tampered_proof_rejected(self, group):
        from repro.crypto.poe import PoEProof

        result, proof = prove_exponentiation(group, group.generator, 98765)
        forged = PoEProof(quotient_power=group.mul(proof.quotient_power, 2))
        assert not verify_exponentiation(group, group.generator, 98765, result, forged)

    @given(st.integers(min_value=1, max_value=2**256))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_random_exponents(self, group, exponent):
        base = group.power(group.generator, 7)
        result, proof = prove_exponentiation(group, base, exponent)
        assert verify_exponentiation(group, base, exponent, result, proof)


class TestCanonicalBoundary:
    """Regressions: malformed group elements must be rejected, not reduced.

    Before the fix, ``verify_exponentiation`` compared against
    ``result % modulus``, so ``result + N`` (a non-canonical encoding of the
    same element) verified, and a zero or out-of-range quotient power was
    silently reduced into range instead of failing.
    """

    def test_result_shifted_by_modulus_rejected(self, group):
        result, proof = prove_exponentiation(group, group.generator, 98765)
        assert not verify_exponentiation(
            group, group.generator, 98765, result + group.modulus, proof
        )

    def test_zero_and_negative_result_rejected(self, group):
        result, proof = prove_exponentiation(group, group.generator, 98765)
        assert not verify_exponentiation(group, group.generator, 98765, 0, proof)
        assert not verify_exponentiation(
            group, group.generator, 98765, result - group.modulus, proof
        )

    def test_non_canonical_base_rejected(self, group):
        result, proof = prove_exponentiation(group, group.generator, 98765)
        assert not verify_exponentiation(
            group, group.generator + group.modulus, 98765, result, proof
        )
        assert not verify_exponentiation(group, 0, 98765, result, proof)

    def test_degenerate_quotient_power_rejected(self, group):
        from repro.crypto.poe import PoEProof

        result, proof = prove_exponentiation(group, group.generator, 98765)
        for bad in (0, -1, group.modulus, proof.quotient_power + group.modulus):
            assert not verify_exponentiation(
                group, group.generator, 98765, result, PoEProof(quotient_power=bad)
            )

    def test_non_positive_exponent_rejected(self, group):
        result, proof = prove_exponentiation(group, group.generator, 98765)
        assert not verify_exponentiation(group, group.generator, 0, result, proof)
        assert not verify_exponentiation(group, group.generator, -98765, result, proof)
