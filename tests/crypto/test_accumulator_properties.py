"""Property-based tests for the dynamic universal RSA accumulator.

Randomized (but seeded — no hypothesis dependency) round-trips over the
accumulator's full API, asserting the algebraic invariants the Litmus
memory-integrity layer leans on:

- ``value == g^product`` after every add/remove, in any interleaving;
- aggregated membership witnesses verify for arbitrary random subsets and
  fail for tampered subsets;
- non-membership proofs succeed exactly when no queried prime is
  accumulated;
- the PoE-compressed membership path agrees with the plain path.
"""

from __future__ import annotations

import random

import pytest

from repro.crypto.accumulator import RSAAccumulator
from repro.crypto.primes import hash_to_prime
from repro.errors import CryptoError

SEED = 20260806
ROUNDS = 12


def primes_pool(count: int, tag: bytes = b"prop") -> list[int]:
    return [hash_to_prime(tag + i.to_bytes(4, "big"), 64) for i in range(count)]


@pytest.fixture(scope="module")
def pool() -> list[int]:
    return primes_pool(24)


def reference_digest(group, multiset: list[int]) -> int:
    exponent = 1
    for prime in multiset:
        exponent *= prime
    return group.power(group.generator, exponent)


class TestRandomizedRoundTrips:
    def test_value_tracks_product_through_random_ops(self, group, pool):
        rng = random.Random(SEED)
        acc = RSAAccumulator(group)
        multiset: list[int] = []
        for _ in range(60):
            if multiset and rng.random() < 0.4:
                prime = rng.choice(multiset)
                acc.remove(prime)
                multiset.remove(prime)
            else:
                prime = rng.choice(pool)
                acc.add(prime)
                multiset.append(prime)
            # The invariant: the digest is exactly g^(prod of the multiset).
            assert acc.value == reference_digest(group, multiset)
            product = 1
            for p in multiset:
                product *= p
            assert acc.product == product

    def test_duplicate_elements_count_with_multiplicity(self, group, pool):
        rng = random.Random(SEED + 1)
        prime = rng.choice(pool)
        acc = RSAAccumulator(group, [prime, prime])
        # One removal leaves one occurrence; its witness still verifies.
        acc.remove(prime)
        witness = acc.membership_witness([prime])
        assert RSAAccumulator.verify_membership(group, acc.value, [prime], witness)
        acc.remove(prime)
        with pytest.raises(CryptoError):
            acc.remove(prime)


class TestAggregatedMembership:
    def test_random_subsets_verify(self, group, pool):
        rng = random.Random(SEED + 2)
        acc = RSAAccumulator(group, pool)
        for _ in range(ROUNDS):
            subset = rng.sample(pool, rng.randint(1, len(pool)))
            witness = acc.membership_witness(subset)
            assert RSAAccumulator.verify_membership(group, acc.value, subset, witness)

    def test_witness_rejects_foreign_prime(self, group, pool):
        rng = random.Random(SEED + 3)
        accumulated = pool[:12]
        outsider = hash_to_prime(b"outsider", 64)
        acc = RSAAccumulator(group, accumulated)
        for _ in range(ROUNDS):
            subset = rng.sample(accumulated, 3)
            witness = acc.membership_witness(subset)
            # Same witness against a subset with one element swapped out.
            tampered = subset[:-1] + [outsider]
            assert not RSAAccumulator.verify_membership(
                group, acc.value, tampered, witness
            )

    def test_witness_for_unaccumulated_prime_raises(self, group, pool):
        acc = RSAAccumulator(group, pool[:6])
        with pytest.raises(CryptoError):
            acc.membership_witness([pool[7]])


class TestNonMembership:
    def test_random_disjoint_sets_verify(self, group, pool):
        rng = random.Random(SEED + 4)
        inside, outside = pool[:12], pool[12:]
        acc = RSAAccumulator(group, inside)
        for _ in range(ROUNDS):
            queried = rng.sample(outside, rng.randint(1, len(outside)))
            product = 1
            for prime in queried:
                product *= prime
            witness = acc.nonmembership_witness(product)
            assert RSAAccumulator.verify_nonmembership(
                group, acc.value, product, witness
            )

    def test_rejected_when_any_queried_prime_is_accumulated(self, group, pool):
        rng = random.Random(SEED + 5)
        inside, outside = pool[:12], pool[12:]
        acc = RSAAccumulator(group, inside)
        for _ in range(ROUNDS):
            queried = rng.sample(outside, 3) + [rng.choice(inside)]
            product = 1
            for prime in queried:
                product *= prime
            with pytest.raises(CryptoError):
                acc.nonmembership_witness(product)

    def test_stale_witness_fails_after_accumulating_queried_prime(self, group, pool):
        inside, target = pool[:8], pool[9]
        acc = RSAAccumulator(group, inside)
        witness = acc.nonmembership_witness(target)
        acc.add(target)
        assert not RSAAccumulator.verify_nonmembership(
            group, acc.value, target, witness
        )


class TestPoEAgreement:
    def test_poe_path_agrees_with_plain_path(self, group, pool):
        rng = random.Random(SEED + 6)
        acc = RSAAccumulator(group, pool)
        for _ in range(ROUNDS):
            subset = rng.sample(pool, rng.randint(1, 8))
            plain = acc.membership_witness(subset)
            witness, exponent, proof = acc.membership_witness_with_poe(subset)
            assert witness == plain
            expected_exponent = 1
            for prime in subset:
                expected_exponent *= prime
            assert exponent == expected_exponent
            assert RSAAccumulator.verify_membership_with_poe(
                group, acc.value, witness, exponent, proof
            )
            assert RSAAccumulator.verify_membership(group, acc.value, subset, plain)

    def test_poe_rejects_wrong_exponent(self, group, pool):
        acc = RSAAccumulator(group, pool[:10])
        subset = pool[:3]
        witness, exponent, proof = acc.membership_witness_with_poe(subset)
        assert not RSAAccumulator.verify_membership_with_poe(
            group, acc.value, witness, exponent * pool[11], proof
        )
