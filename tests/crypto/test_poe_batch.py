"""Tests for batched Wesolowski PoE verification."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.cache import prime_product
from repro.crypto.poe import (
    PoEBatchProof,
    prove_exponentiation,
    prove_poe_batch,
    verify_exponentiation,
    verify_poe_batch,
)
from repro.crypto.primes import hash_to_prime
from repro.crypto.rsa_group import default_group


def _instances(seed: int, count: int, primes_each: int = 3):
    """Random true PoE instances ``(base, exponent, result)``."""
    group = default_group(bits=512).public_view()
    rng = random.Random(seed)
    out = []
    for i in range(count):
        exponent = prime_product(
            hash_to_prime(
                b"poe-batch" + seed.to_bytes(4, "big") + bytes([i, j]), 128
            )
            for j in range(primes_each)
        )
        base = group.power(group.generator, rng.randrange(3, 1 << 64))
        out.append((base, exponent, group.power(base, exponent)))
    return group, out


class TestBatchRoundTrip:
    def test_prove_verify_round_trip(self):
        group, instances = _instances(1, 16)
        proof = prove_poe_batch(group, instances)
        assert proof.count == 16
        assert verify_poe_batch(group, instances, proof)

    def test_single_instance_batch(self):
        group, instances = _instances(2, 1)
        proof = prove_poe_batch(group, instances)
        assert verify_poe_batch(group, instances, proof)

    def test_empty_batch_rejected_both_ways(self):
        group, instances = _instances(3, 2)
        with pytest.raises(ValueError):
            prove_poe_batch(group, [])
        proof = prove_poe_batch(group, instances)
        assert not verify_poe_batch(group, [], proof)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 1000), count=st.integers(1, 8))
    def test_batched_equals_sequential(self, seed, count):
        """Batch verification accepts exactly when each sequential check does."""
        group, instances = _instances(seed, count, primes_each=2)
        proof = prove_poe_batch(group, instances)
        sequential = all(
            verify_exponentiation(group, b, e, r, prove_exponentiation(group, b, e)[1])
            for b, e, r in instances
        )
        assert sequential
        assert verify_poe_batch(group, instances, proof) == sequential

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 1000), victim=st.integers(0, 7))
    def test_one_corrupted_instance_fails_whole_batch(self, seed, victim):
        group, instances = _instances(seed, 8, primes_each=2)
        proof = prove_poe_batch(group, instances)
        corrupted = list(instances)
        base, exponent, result = corrupted[victim]
        corrupted[victim] = (base, exponent, group.mul(result, group.generator))
        assert not verify_poe_batch(group, corrupted, proof)


class TestBatchMalformed:
    def test_count_mismatch_rejected(self):
        group, instances = _instances(4, 4)
        proof = prove_poe_batch(group, instances)
        assert not verify_poe_batch(group, instances[:3], proof)
        assert not verify_poe_batch(
            group, instances, PoEBatchProof(proof.quotient_power, count=3)
        )

    def test_non_canonical_quotient_rejected(self):
        group, instances = _instances(5, 4)
        proof = prove_poe_batch(group, instances)
        for bad in (0, -1, group.modulus, proof.quotient_power + group.modulus):
            assert not verify_poe_batch(
                group, instances, PoEBatchProof(bad, count=len(instances))
            )

    def test_non_canonical_instance_elements_rejected(self):
        group, instances = _instances(6, 4)
        proof = prove_poe_batch(group, instances)
        base, exponent, result = instances[0]
        for mutated in (
            (base + group.modulus, exponent, result),
            (0, exponent, result),
            (base, exponent, result + group.modulus),
            (base, exponent, 0),
            (base, 0, result),
            (base, -exponent, result),
        ):
            tampered = [mutated, *instances[1:]]
            assert not verify_poe_batch(group, tampered, proof)

    def test_reordered_instances_rejected(self):
        """The transcript binds instance order — a shuffle breaks the proof."""
        group, instances = _instances(7, 4)
        proof = prove_poe_batch(group, instances)
        shuffled = [instances[1], instances[0], *instances[2:]]
        assert not verify_poe_batch(group, shuffled, proof)

    def test_proof_not_transferable_across_batches(self):
        group, batch_a = _instances(8, 4)
        _group, batch_b = _instances(9, 4)
        proof_a = prove_poe_batch(group, batch_a)
        assert not verify_poe_batch(group, batch_b, proof_a)
