"""Tests for the pluggable bignum backend layer."""

from __future__ import annotations

import pytest

from repro.crypto.backend import (
    BACKEND_ENV_VAR,
    CryptoBackend,
    Gmpy2Backend,
    PurePythonBackend,
    available_backends,
    get_backend,
    set_backend,
    use_backend,
)
from repro.crypto.rsa_group import default_group
from repro.errors import CryptoError

GMPY2_AVAILABLE = available_backends()["gmpy2"]


@pytest.fixture(autouse=True)
def _restore_backend():
    previous = set_backend(None)
    yield
    set_backend(previous)


class TestSelection:
    def test_python_backend_always_available(self):
        assert available_backends()["python"] is True

    def test_default_resolution_returns_a_backend(self):
        backend = get_backend()
        assert isinstance(backend, CryptoBackend)
        assert backend.name in ("python", "gmpy2")

    def test_env_var_selects_pure_python(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "python")
        set_backend(None)  # force re-resolution from the environment
        assert get_backend().name == "python"

    def test_unknown_name_rejected(self):
        with pytest.raises(CryptoError):
            set_backend("quantum")

    def test_set_backend_returns_previous(self):
        first = set_backend("python")
        second = set_backend(None)
        assert isinstance(second, PurePythonBackend)
        del first

    def test_use_backend_restores_on_exit(self):
        outer = get_backend()
        with use_backend("python") as inner:
            assert inner.name == "python"
            assert get_backend() is inner
        assert get_backend() is outer

    @pytest.mark.skipif(GMPY2_AVAILABLE, reason="gmpy2 is installed here")
    def test_gmpy2_request_fails_cleanly_when_missing(self):
        with pytest.raises(CryptoError, match="gmpy2"):
            set_backend("gmpy2")


class TestPurePythonKernel:
    def test_powmod_matches_builtin(self):
        backend = PurePythonBackend()
        group = default_group(bits=512)
        n = group.modulus
        assert backend.powmod(group.generator, 12345, n) == pow(group.generator, 12345, n)

    def test_mulmod_and_gcd(self):
        backend = PurePythonBackend()
        assert backend.mulmod(7, 9, 10) == 3
        assert backend.gcd(84, 30) == 6

    def test_invert_round_trips(self):
        backend = PurePythonBackend()
        group = default_group(bits=512)
        n = group.modulus
        inv = backend.invert(group.generator, n)
        assert backend.mulmod(group.generator, inv, n) == 1

    def test_invert_rejects_non_units(self):
        backend = PurePythonBackend()
        with pytest.raises(CryptoError):
            backend.invert(6, 9)


@pytest.mark.skipif(not GMPY2_AVAILABLE, reason="gmpy2 not installed")
class TestBackendEquivalence:
    """gmpy2 and pure python must be operation-for-operation identical."""

    def test_kernels_agree_on_random_operands(self):
        import random

        python = PurePythonBackend()
        native = Gmpy2Backend()
        group = default_group(bits=512)
        n = group.modulus
        rng = random.Random(42)
        for _ in range(50):
            a = rng.randrange(2, n)
            b = rng.randrange(2, n)
            e = rng.getrandbits(256)
            assert python.powmod(a, e, n) == native.powmod(a, e, n)
            assert python.mulmod(a, b, n) == native.mulmod(a, b, n)
            assert python.gcd(a, b) == native.gcd(a, b)

    def test_primes_and_digests_identical_across_backends(self):
        from repro.crypto.authdict import AuthenticatedDictionary
        from repro.crypto.cache import clear_prime_caches
        from repro.crypto.primes import hash_to_prime

        results = {}
        for name in ("python", "gmpy2"):
            with use_backend(name):
                clear_prime_caches()
                primes = tuple(hash_to_prime(bytes([i]), 128) for i in range(8))
                group = default_group(bits=512)
                ad = AuthenticatedDictionary(
                    group, initial={("k", i): i for i in range(8)}, prime_bits=64
                )
                results[name] = (primes, ad.digest)
        clear_prime_caches()
        assert results["python"] == results["gmpy2"]
