"""Tests for the Merkle tree baseline."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.merkle import MerklePath, MerkleTree
from repro.errors import CryptoError


class TestConstruction:
    def test_capacity_rounds_to_power_of_two(self):
        assert MerkleTree(5).capacity == 8
        assert MerkleTree(8).capacity == 8
        assert MerkleTree(1).capacity == 1

    def test_empty_trees_of_same_capacity_agree(self):
        assert MerkleTree(16).root == MerkleTree(16).root

    def test_different_capacities_different_roots(self):
        assert MerkleTree(8).root != MerkleTree(16).root

    def test_invalid_capacity(self):
        with pytest.raises(CryptoError):
            MerkleTree(0)


class TestUpdateAndProve:
    def test_update_changes_root(self):
        tree = MerkleTree(8)
        before = tree.root
        tree.update(3, "hello")
        assert tree.root != before

    def test_lookup_proof_roundtrip(self):
        tree = MerkleTree(8)
        tree.update(3, "hello")
        path = tree.prove(3)
        assert MerkleTree.verify(tree.root, path, "hello")

    def test_wrong_value_rejected(self):
        tree = MerkleTree(8)
        tree.update(3, "hello")
        path = tree.prove(3)
        assert not MerkleTree.verify(tree.root, path, "goodbye")

    def test_wrong_index_rejected(self):
        tree = MerkleTree(8)
        tree.update(3, "hello")
        path = tree.prove(3)
        moved = MerklePath(index=2, siblings=path.siblings)
        assert not MerkleTree.verify(tree.root, moved, "hello")

    def test_stale_proof_rejected_after_update(self):
        tree = MerkleTree(8)
        tree.update(3, "hello")
        path = tree.prove(3)
        tree.update(4, "other")
        assert not MerkleTree.verify(tree.root, path, "hello")

    def test_root_after_update_matches_actual(self):
        tree = MerkleTree(8)
        tree.update(3, "hello")
        path = tree.prove(3)
        predicted = MerkleTree.root_after_update(path, "world")
        tree.update(3, "world")
        assert predicted == tree.root

    def test_path_length_is_depth(self):
        tree = MerkleTree(16)
        assert len(tree.prove(0).siblings) == 4
        assert tree.prove(0).hash_count == 5

    def test_out_of_range_index(self):
        tree = MerkleTree(4)
        with pytest.raises(CryptoError):
            tree.update(4, "x")
        with pytest.raises(CryptoError):
            tree.prove(-1)


class TestPropertyBased:
    @given(
        st.lists(
            st.tuples(st.integers(min_value=0, max_value=31), st.integers()),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_all_written_values_provable(self, writes):
        tree = MerkleTree(32)
        state: dict[int, int] = {}
        for index, value in writes:
            tree.update(index, value)
            state[index] = value
        for index, value in state.items():
            path = tree.prove(index)
            assert MerkleTree.verify(tree.root, path, value)

    @given(st.lists(st.integers(), min_size=2, max_size=10, unique=True))
    @settings(max_examples=30, deadline=None)
    def test_roots_distinguish_contents(self, values):
        t1 = MerkleTree(16)
        t2 = MerkleTree(16)
        t1.update(0, values[0])
        t2.update(0, values[1])
        assert t1.root != t2.root
