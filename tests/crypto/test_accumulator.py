"""Tests for the dynamic universal RSA accumulator."""

from __future__ import annotations

import pytest

from repro.crypto.accumulator import NonMembershipWitness, RSAAccumulator
from repro.crypto.primes import hash_to_prime
from repro.errors import CryptoError


def primes_for(count: int, tag: bytes = b"acc") -> list[int]:
    return [hash_to_prime(tag + i.to_bytes(4, "big"), 64) for i in range(count)]


class TestAccumulate:
    def test_empty_accumulator_is_generator(self, group):
        acc = RSAAccumulator(group)
        assert acc.value == group.generator
        assert acc.product == 1

    def test_add_changes_digest(self, group):
        acc = RSAAccumulator(group)
        before = acc.value
        acc.add(primes_for(1)[0])
        assert acc.value != before

    def test_order_independent_digest(self, group):
        ps = primes_for(5)
        a = RSAAccumulator(group, ps)
        b = RSAAccumulator(group, reversed(ps))
        assert a.value == b.value

    def test_remove_restores_digest(self, group):
        ps = primes_for(3)
        acc = RSAAccumulator(group, ps)
        digest_two = RSAAccumulator(group, ps[:2]).value
        acc.remove(ps[2])
        assert acc.value == digest_two

    def test_remove_missing_raises(self, group):
        acc = RSAAccumulator(group, primes_for(2))
        with pytest.raises(CryptoError):
            acc.remove(hash_to_prime(b"other", 64))

    def test_rejects_tiny_elements(self, group):
        acc = RSAAccumulator(group)
        with pytest.raises(CryptoError):
            acc.add(2)


class TestMembership:
    def test_single_membership(self, group):
        ps = primes_for(4)
        acc = RSAAccumulator(group, ps)
        w = acc.membership_witness([ps[1]])
        assert RSAAccumulator.verify_membership(group, acc.value, [ps[1]], w)

    def test_aggregated_membership(self, group):
        ps = primes_for(6)
        acc = RSAAccumulator(group, ps)
        subset = [ps[0], ps[2], ps[5]]
        w = acc.membership_witness(subset)
        assert RSAAccumulator.verify_membership(group, acc.value, subset, w)

    def test_witness_for_missing_prime_raises(self, group):
        acc = RSAAccumulator(group, primes_for(3))
        with pytest.raises(CryptoError):
            acc.membership_witness([hash_to_prime(b"nope", 64)])

    def test_forged_witness_rejected(self, group):
        ps = primes_for(3)
        acc = RSAAccumulator(group, ps)
        w = acc.membership_witness([ps[0]])
        assert not RSAAccumulator.verify_membership(
            group, acc.value, [ps[0]], group.mul(w, 2)
        )

    def test_witness_does_not_transfer_to_other_prime(self, group):
        ps = primes_for(3)
        other = hash_to_prime(b"not-in-set", 64)
        acc = RSAAccumulator(group, ps)
        w = acc.membership_witness([ps[0]])
        assert not RSAAccumulator.verify_membership(group, acc.value, [other], w)

    def test_poe_compressed_membership(self, group):
        ps = primes_for(8)
        acc = RSAAccumulator(group, ps)
        witness, exponent, proof = acc.membership_witness_with_poe(ps[:4])
        assert RSAAccumulator.verify_membership_with_poe(
            group, acc.value, witness, exponent, proof
        )


class TestNonMembership:
    def test_single_nonmembership(self, group):
        ps = primes_for(4)
        outsider = hash_to_prime(b"outsider", 64)
        acc = RSAAccumulator(group, ps)
        w = acc.nonmembership_witness(outsider)
        assert RSAAccumulator.verify_nonmembership(group, acc.value, outsider, w)

    def test_aggregated_nonmembership(self, group):
        ps = primes_for(4)
        outsiders = primes_for(3, tag=b"out")
        product = outsiders[0] * outsiders[1] * outsiders[2]
        acc = RSAAccumulator(group, ps)
        w = acc.nonmembership_witness(product)
        assert RSAAccumulator.verify_nonmembership(group, acc.value, product, w)

    def test_member_cannot_get_nonmembership_witness(self, group):
        ps = primes_for(4)
        acc = RSAAccumulator(group, ps)
        with pytest.raises(CryptoError):
            acc.nonmembership_witness(ps[0])

    def test_forged_nonmembership_rejected(self, group):
        ps = primes_for(4)
        acc = RSAAccumulator(group, ps)
        # Try to claim a member is a non-member with garbage coefficients.
        forged = NonMembershipWitness(a=12345, b=-6789)
        assert not RSAAccumulator.verify_nonmembership(group, acc.value, ps[0], forged)

    def test_empty_accumulator_nonmembership(self, group):
        acc = RSAAccumulator(group)
        outsider = hash_to_prime(b"outsider", 64)
        w = acc.nonmembership_witness(outsider)
        assert RSAAccumulator.verify_nonmembership(group, acc.value, outsider, w)


class TestEmptyAndNonCanonical:
    """Regressions for the empty-set and canonical-encoding verifier bugs.

    Before the fix, an empty query set had exponent 1 so any
    ``witness == digest`` "verified" a membership claim about nothing, and
    out-of-range digests/witnesses were silently reduced modulo N.
    """

    def test_empty_membership_witness_refused(self, group):
        acc = RSAAccumulator(group, primes_for(4))
        with pytest.raises(CryptoError):
            acc.membership_witness([])

    def test_empty_membership_verification_rejected(self, group):
        acc = RSAAccumulator(group, primes_for(4))
        # The trivial "proof": witness equal to the digest, empty prime set.
        assert not RSAAccumulator.verify_membership(group, acc.value, [], acc.value)

    def test_empty_poe_membership_rejected(self, group):
        from repro.crypto.poe import prove_exponentiation

        acc = RSAAccumulator(group, primes_for(4))
        # exponent 1 is the empty set in disguise on the PoE path.
        _result, poe = prove_exponentiation(group, acc.value, 1)
        assert not RSAAccumulator.verify_membership_with_poe(
            group, acc.value, acc.value, 1, poe
        )

    def test_shifted_witness_rejected(self, group):
        ps = primes_for(4)
        acc = RSAAccumulator(group, ps)
        witness = acc.membership_witness(ps[:2])
        assert RSAAccumulator.verify_membership(group, acc.value, ps[:2], witness)
        assert not RSAAccumulator.verify_membership(
            group, acc.value, ps[:2], witness + group.modulus
        )
        assert not RSAAccumulator.verify_membership(group, acc.value, ps[:2], 0)

    def test_shifted_digest_rejected(self, group):
        ps = primes_for(4)
        acc = RSAAccumulator(group, ps)
        witness = acc.membership_witness(ps[:2])
        assert not RSAAccumulator.verify_membership(
            group, acc.value + group.modulus, ps[:2], witness
        )

    def test_nonmembership_shifted_digest_rejected(self, group):
        ps = primes_for(4)
        acc = RSAAccumulator(group, ps)
        outsider = hash_to_prime(b"outsider-canon", 64)
        w = acc.nonmembership_witness(outsider)
        assert RSAAccumulator.verify_nonmembership(group, acc.value, outsider, w)
        assert not RSAAccumulator.verify_nonmembership(
            group, acc.value + group.modulus, outsider, w
        )
        assert not RSAAccumulator.verify_nonmembership(group, 0, outsider, w)
