"""Tests for primality testing and hash-to-prime sampling."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.primes import (
    SMALL_PRIMES,
    hash_to_prime,
    is_prime_trial,
    is_probable_prime,
    next_probable_prime,
)
from repro.errors import PrimalityError


class TestSmallPrimes:
    def test_sieve_starts_correctly(self):
        assert SMALL_PRIMES[:10] == [2, 3, 5, 7, 11, 13, 17, 19, 23, 29]

    def test_sieve_bound(self):
        assert all(p < 10_000 for p in SMALL_PRIMES)
        assert 9973 in SMALL_PRIMES  # largest prime below 10000

    def test_sieve_is_sorted_and_unique(self):
        assert SMALL_PRIMES == sorted(set(SMALL_PRIMES))


class TestTrialDivision:
    @pytest.mark.parametrize("n", [2, 3, 5, 7, 97, 7919, 104729])
    def test_accepts_primes(self, n):
        assert is_prime_trial(n)

    @pytest.mark.parametrize("n", [-7, 0, 1, 4, 9, 91, 7917, 104730])
    def test_rejects_non_primes(self, n):
        assert not is_prime_trial(n)


class TestMillerRabin:
    def test_agrees_with_trial_division_exhaustively(self):
        for n in range(2, 2000):
            assert is_probable_prime(n) == is_prime_trial(n), n

    @pytest.mark.parametrize(
        "carmichael", [561, 1105, 1729, 2465, 2821, 6601, 8911, 41041, 825265]
    )
    def test_rejects_carmichael_numbers(self, carmichael):
        assert not is_probable_prime(carmichael)

    def test_accepts_large_known_prime(self):
        # 2^127 - 1 is a Mersenne prime.
        assert is_probable_prime(2**127 - 1)

    def test_rejects_large_known_composite(self):
        assert not is_probable_prime((2**127 - 1) * (2**61 - 1))

    @given(st.integers(min_value=2, max_value=10**6))
    @settings(max_examples=200)
    def test_product_of_two_is_composite(self, n):
        assert not is_probable_prime(n * 7919)


class TestNextPrime:
    def test_basic_steps(self):
        assert next_probable_prime(2) == 3
        assert next_probable_prime(3) == 5
        assert next_probable_prime(13) == 17
        assert next_probable_prime(0) == 2

    def test_strictly_greater(self):
        assert next_probable_prime(7919) > 7919


class TestHashToPrime:
    def test_deterministic(self):
        assert hash_to_prime(b"seed", 128) == hash_to_prime(b"seed", 128)

    def test_distinct_seeds_distinct_primes(self):
        assert hash_to_prime(b"a", 128) != hash_to_prime(b"b", 128)

    def test_exact_bit_length(self):
        for bits in (64, 128, 256):
            assert hash_to_prime(b"x", bits).bit_length() == bits

    def test_residue_targeting(self):
        for residue in (1, 3, 5, 7):
            p = hash_to_prime(b"y", 128, residue=residue)
            assert p % 8 == residue
            assert is_probable_prime(p)

    def test_even_residue_rejected(self):
        with pytest.raises(PrimalityError):
            hash_to_prime(b"z", 128, residue=4)

    @given(st.binary(min_size=1, max_size=32))
    @settings(max_examples=30, deadline=None)
    def test_output_always_prime(self, seed):
        assert is_probable_prime(hash_to_prime(seed, 96))
