"""Tests for primality testing and hash-to-prime sampling."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.primes import (
    SMALL_PRIMES,
    hash_to_prime,
    is_prime_trial,
    is_probable_prime,
    miller_rabin_round,
    next_probable_prime,
)
from repro.errors import PrimalityError


class TestSmallPrimes:
    def test_sieve_starts_correctly(self):
        assert SMALL_PRIMES[:10] == [2, 3, 5, 7, 11, 13, 17, 19, 23, 29]

    def test_sieve_bound(self):
        assert all(p < 10_000 for p in SMALL_PRIMES)
        assert 9973 in SMALL_PRIMES  # largest prime below 10000

    def test_sieve_is_sorted_and_unique(self):
        assert SMALL_PRIMES == sorted(set(SMALL_PRIMES))


class TestTrialDivision:
    @pytest.mark.parametrize("n", [2, 3, 5, 7, 97, 7919, 104729])
    def test_accepts_primes(self, n):
        assert is_prime_trial(n)

    @pytest.mark.parametrize("n", [-7, 0, 1, 4, 9, 91, 7917, 104730])
    def test_rejects_non_primes(self, n):
        assert not is_prime_trial(n)


class TestMillerRabin:
    def test_agrees_with_trial_division_exhaustively(self):
        for n in range(2, 2000):
            assert is_probable_prime(n) == is_prime_trial(n), n

    @pytest.mark.parametrize(
        "carmichael", [561, 1105, 1729, 2465, 2821, 6601, 8911, 41041, 825265]
    )
    def test_rejects_carmichael_numbers(self, carmichael):
        assert not is_probable_prime(carmichael)

    def test_accepts_large_known_prime(self):
        # 2^127 - 1 is a Mersenne prime.
        assert is_probable_prime(2**127 - 1)

    def test_rejects_large_known_composite(self):
        assert not is_probable_prime((2**127 - 1) * (2**61 - 1))

    @given(st.integers(min_value=2, max_value=10**6))
    @settings(max_examples=200)
    def test_product_of_two_is_composite(self, n):
        assert not is_probable_prime(n * 7919)


class TestNextPrime:
    def test_basic_steps(self):
        assert next_probable_prime(2) == 3
        assert next_probable_prime(3) == 5
        assert next_probable_prime(13) == 17
        assert next_probable_prime(0) == 2

    def test_strictly_greater(self):
        assert next_probable_prime(7919) > 7919


class TestHashToPrime:
    def test_deterministic(self):
        assert hash_to_prime(b"seed", 128) == hash_to_prime(b"seed", 128)

    def test_distinct_seeds_distinct_primes(self):
        assert hash_to_prime(b"a", 128) != hash_to_prime(b"b", 128)

    def test_exact_bit_length(self):
        for bits in (64, 128, 256):
            assert hash_to_prime(b"x", bits).bit_length() == bits

    def test_residue_targeting(self):
        for residue in (1, 3, 5, 7):
            p = hash_to_prime(b"y", 128, residue=residue)
            assert p % 8 == residue
            assert is_probable_prime(p)

    def test_even_residue_rejected(self):
        with pytest.raises(PrimalityError):
            hash_to_prime(b"z", 128, residue=4)

    @given(st.binary(min_size=1, max_size=32))
    @settings(max_examples=30, deadline=None)
    def test_output_always_prime(self, seed):
        assert is_probable_prime(hash_to_prime(seed, 96))


class TestWheelFastPath:
    """The wheel-sieve prefilter must never change an answer — it may only
    reject true composites before Miller-Rabin sees them."""

    def _reference_is_prime(self, n: int) -> bool:
        """Plain Miller-Rabin with the same base schedule, no prefilters."""
        from repro.crypto.primes import (
            _DETERMINISTIC_BASES,
            _DETERMINISTIC_BOUND,
            _EXTRA_BASES,
        )

        if n < 2:
            return False
        for p in (2, 3):
            if n % p == 0:
                return n == p
        bases = _DETERMINISTIC_BASES
        if n >= _DETERMINISTIC_BOUND:
            bases = bases + _EXTRA_BASES
        return all(miller_rabin_round(n, b) for b in bases)

    def test_agrees_with_unfiltered_reference(self):
        import random

        rng = random.Random(99)
        candidates = list(range(2, 600))
        candidates += [rng.getrandbits(bits) | 1 for bits in (20, 40, 64, 128) for _ in range(50)]
        # Composites whose smallest factor lies in the wheel zone (311, 10^4):
        # exactly the cases the chunked gcds newly reject.
        wheel_primes = [p for p in SMALL_PRIMES if p > 311]
        candidates += [
            wheel_primes[i] * wheel_primes[-1 - i] for i in range(0, 40, 3)
        ]
        candidates += [p * next_probable_prime(1 << 64) for p in wheel_primes[:5]]
        for n in candidates:
            assert is_probable_prime(n) == self._reference_is_prime(n), n

    def test_hash_to_prime_unchanged_by_wheel(self):
        # Pinned outputs: the wheel must not alter the candidate walk.  These
        # values were produced by the pre-wheel implementation.
        for seed, bits in ((b"wheel-pin-a", 64), (b"wheel-pin-b", 128)):
            prime = hash_to_prime(seed, bits)
            assert prime.bit_length() == bits
            assert is_probable_prime(prime)
            # Determinism across calls (memo-free path).
            assert hash_to_prime(seed, bits) == prime

    def test_wheel_zone_primes_still_accepted(self):
        # Primes just above the wheel bound must not be eaten by the gcds.
        p = next_probable_prime(10_000)
        assert is_probable_prime(p)
        assert not is_probable_prime(p * p)
