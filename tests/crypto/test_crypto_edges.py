"""Edge-case and negative tests across the crypto substrate."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.authdict import AuthenticatedDictionary
from repro.crypto.categorization import (
    CATEGORY_KEY,
    CATEGORY_RELATION,
    CATEGORY_VALUE,
    sample_category_prime,
)
from repro.crypto.pocklington import PocklingtonCertificate, build_certified_prime
from repro.errors import CertificateError

PRIME_BITS = 64


class TestPoELookupPath:
    """Crypto-level tests of the PoE-compressed AD lookup."""

    @pytest.fixture()
    def ad(self, group):
        return AuthenticatedDictionary(
            group, initial={("r", i): i * 3 for i in range(10)}, prime_bits=PRIME_BITS
        )

    def test_poe_lookup_roundtrip(self, ad):
        keys = [("r", 1), ("r", 4), ("r", 7)]
        proof, poe = ad.prove_lookup_with_poe(keys)
        pairs = {key: key[1] * 3 for key in keys}
        assert ad.ver_lookup_with_poe(ad.digest, pairs, proof, poe)
        # The plain verifier accepts the same witness.
        assert ad.ver_lookup(ad.digest, pairs, proof)

    def test_poe_wrong_value_rejected(self, ad):
        proof, poe = ad.prove_lookup_with_poe([("r", 1)])
        assert not ad.ver_lookup_with_poe(ad.digest, {("r", 1): 999}, proof, poe)

    def test_poe_wrong_digest_rejected(self, ad, group):
        proof, poe = ad.prove_lookup_with_poe([("r", 1)])
        assert not ad.ver_lookup_with_poe(
            group.mul(ad.digest, 2), {("r", 1): 3}, proof, poe
        )

    def test_poe_does_not_transfer_between_key_sets(self, ad):
        proof_a, poe_a = ad.prove_lookup_with_poe([("r", 1)])
        proof_b, _poe_b = ad.prove_lookup_with_poe([("r", 2)])
        assert not ad.ver_lookup_with_poe(ad.digest, {("r", 2): 6}, proof_b, poe_a)


class TestCertificateEdges:
    def test_chain_steps_have_wide_windows(self):
        """Regression for the narrow-boost-window liveness bug: every step
        in a chain must grow the prime by a healthy margin (except possibly
        the final exact-size step)."""
        for bits in (32, 48, 64, 96, 128):
            cert = build_certified_prime(bits, b"width-check")
            p = cert.base_prime
            for step in cert.steps[:-1]:
                n = step.r * p + 1
                assert n.bit_length() >= p.bit_length() + 12
                p = n
            assert (cert.steps[-1].r * p + 1).bit_length() == bits

    def test_search_failure_raises_not_hangs(self):
        """An impossible boost errors out instead of spinning forever."""
        from repro.crypto.pocklington import _boost

        # A 4-bit window above a 30-bit prime rarely contains a usable
        # prime; the bounded search must terminate either way.
        base = build_certified_prime(64, b"x").base_prime
        try:
            _boost(base, base.bit_length() + 1, b"doomed", residue=None)
        except CertificateError:
            pass  # acceptable: bounded failure

    def test_empty_steps_certificate_is_just_the_base(self):
        cert = PocklingtonCertificate(base_prime=7919, steps=(), prime=7919)
        assert cert.verify()

    def test_certificate_for_different_prime_fails(self):
        cert = PocklingtonCertificate(base_prime=7919, steps=(), prime=7927)
        assert not cert.verify()


class TestCategorizationProperties:
    @given(
        st.integers(min_value=0, max_value=10**9),
        st.integers(min_value=0, max_value=10**9),
    )
    @settings(max_examples=50, deadline=None)
    def test_distinct_nonces_distinct_primes(self, a, b):
        if a == b:
            return
        pa = sample_category_prime(96, CATEGORY_KEY, a)
        pb = sample_category_prime(96, CATEGORY_KEY, b)
        assert pa != pb  # collisions would break pair binding

    def test_category_residues_partition(self):
        seen = set()
        for category in (CATEGORY_KEY, CATEGORY_VALUE, CATEGORY_RELATION):
            p = sample_category_prime(64, category, b"partition")
            assert p % 8 not in seen or category == CATEGORY_KEY
            seen.add(p % 8)


class TestAuthDictStress:
    def test_many_updates_stay_consistent(self, group):
        ad = AuthenticatedDictionary(group, prime_bits=PRIME_BITS)
        reference: dict = {}
        for round_number in range(12):
            changes = {("k", round_number % 5): round_number * 11}
            ad.update(changes)
            reference.update(changes)
        rebuilt = AuthenticatedDictionary.commit(group, reference, prime_bits=PRIME_BITS)
        assert rebuilt == ad.digest
        proof = ad.prove_lookup(list(reference))
        assert ad.ver_lookup(ad.digest, reference, proof)
