"""Tests for Pocklington primality certificates."""

from __future__ import annotations

import pytest

from repro.crypto.pocklington import (
    PocklingtonCertificate,
    PocklingtonStep,
    build_certified_prime,
)
from repro.crypto.primes import is_probable_prime
from repro.errors import CertificateError


class TestBuildCertifiedPrime:
    @pytest.mark.parametrize("bits", [64, 96, 128])
    def test_builds_prime_of_exact_size(self, bits):
        cert = build_certified_prime(bits, b"seed")
        assert cert.prime.bit_length() == bits
        assert is_probable_prime(cert.prime)

    def test_certificate_verifies(self):
        cert = build_certified_prime(128, b"seed")
        assert cert.verify()
        cert.check()  # must not raise

    def test_deterministic_in_seed(self):
        a = build_certified_prime(96, b"same-seed")
        b = build_certified_prime(96, b"same-seed")
        assert a.prime == b.prime
        assert a.steps == b.steps

    def test_distinct_seeds_distinct_primes(self):
        a = build_certified_prime(96, b"seed-1")
        b = build_certified_prime(96, b"seed-2")
        assert a.prime != b.prime

    @pytest.mark.parametrize("residue", [1, 3, 5, 7])
    def test_residue_targeting(self, residue):
        cert = build_certified_prime(96, b"res-seed", residue=residue)
        assert cert.prime % 8 == residue
        assert cert.verify()

    def test_rejects_tiny_bit_lengths(self):
        with pytest.raises(CertificateError):
            build_certified_prime(16, b"seed")

    def test_chain_grows_from_small_base(self):
        cert = build_certified_prime(128, b"seed")
        assert cert.base_prime.bit_length() <= 34
        assert len(cert.steps) >= 2


class TestCertificateSoundness:
    """A tampered certificate must never verify."""

    @pytest.fixture()
    def cert(self) -> PocklingtonCertificate:
        return build_certified_prime(96, b"soundness")

    def test_wrong_claimed_prime(self, cert):
        forged = PocklingtonCertificate(cert.base_prime, cert.steps, cert.prime + 2)
        assert not forged.verify()

    def test_composite_base(self, cert):
        forged = PocklingtonCertificate(cert.base_prime + 1, cert.steps, cert.prime)
        assert not forged.verify()

    def test_oversized_base_rejected(self, cert):
        # Even a true prime is rejected if too large to trial-divide.
        big = 2**61 - 1
        forged = PocklingtonCertificate(big, cert.steps, cert.prime)
        assert not forged.verify()

    def test_tampered_step_r(self, cert):
        steps = list(cert.steps)
        steps[-1] = PocklingtonStep(r=steps[-1].r + 2, witness=steps[-1].witness)
        forged = PocklingtonCertificate(cert.base_prime, tuple(steps), cert.prime)
        assert not forged.verify()

    def test_step_size_condition_enforced(self):
        # N = r*p + 1 with r far larger than p must be rejected even if N is
        # prime, because p <= sqrt(N) - 1 breaks the Pocklington premise.
        p = 5
        # 5 * 74 + 1 = 371 = 7 * 53 (composite) -- use a prime N instead:
        # r=72: 361=19^2 composite; r=156: 781=11*71; pick r with N prime:
        # r = 312 -> N = 1561 = 7*223 composite; r = 132 -> 661 prime.
        r = 132
        n = r * p + 1
        assert is_probable_prime(n)
        step = PocklingtonStep(r=r, witness=2)
        forged = PocklingtonCertificate(p, (step,), n)
        assert not forged.verify()
