"""Tests for the crypto hot-path caches and product-tree helpers."""

from __future__ import annotations

import random
import threading

from repro.crypto.cache import (
    LRUCache,
    bump_prime_cache_epoch,
    cached_certified_prime,
    cached_hash_to_prime,
    prime_cache_stats,
    prime_product,
    product_tree,
)
from repro.crypto.primes import hash_to_prime, is_probable_prime


class TestLRUCache:
    def test_hit_miss_accounting(self):
        cache = LRUCache(maxsize=4, name="t")
        assert cache.get_or_compute("a", lambda: 1) == 1
        assert cache.get_or_compute("a", lambda: 2) == 1  # hit keeps old value
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5

    def test_eviction_is_least_recently_used(self):
        cache = LRUCache(maxsize=2)
        cache.get_or_compute("a", lambda: 1)
        cache.get_or_compute("b", lambda: 2)
        cache.get_or_compute("a", lambda: 0)  # refresh a
        cache.get_or_compute("c", lambda: 3)  # evicts b
        assert cache.stats.evictions == 1
        cache.get_or_compute("a", lambda: 99)
        assert cache.stats.hits == 2  # a survived
        cache.get_or_compute("b", lambda: 4)
        assert cache.stats.misses == 4  # b was evicted

    def test_concurrent_get_or_compute_is_consistent(self):
        cache = LRUCache(maxsize=64)
        results: list[int] = []

        def worker(k: int):
            for i in range(200):
                results.append(cache.get_or_compute(i % 16, lambda i=i: (i % 16) * 7))

        threads = [threading.Thread(target=worker, args=(k,)) for k in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(results[i] % 7 == 0 for i in range(len(results)))
        assert len(cache) == 16


class TestProductTree:
    def test_matches_linear_product(self):
        rng = random.Random(7)
        for length in (0, 1, 2, 3, 7, 64, 257):
            values = [rng.getrandbits(96) | 1 for _ in range(length)]
            expected = 1
            for v in values:
                expected *= v
            assert product_tree(values) == expected
            assert prime_product(iter(values)) == expected

    def test_empty_product_is_one(self):
        assert product_tree([]) == 1
        assert prime_product(()) == 1


class TestPrimeMemos:
    def test_cached_hash_to_prime_matches_uncached(self):
        seed = b"cache-agree"
        assert cached_hash_to_prime(seed, 64) == hash_to_prime(seed, 64)
        assert cached_hash_to_prime(seed, 64, residue=3) == hash_to_prime(
            seed, 64, residue=3
        )

    def test_cached_certified_prime_verifies_and_hits(self):
        before = prime_cache_stats()["pocklington"]["misses"]
        cert = cached_certified_prime(64, b"cache-cert", residue=3)
        again = cached_certified_prime(64, b"cache-cert", residue=3)
        assert cert is again  # second call served from the memo
        assert cert.verify()
        assert cert.prime % 8 == 3
        assert is_probable_prime(cert.prime)
        assert prime_cache_stats()["pocklington"]["misses"] == before + 1

    def test_epoch_bump_invalidates(self):
        seed = b"cache-epoch"
        first = cached_hash_to_prime(seed, 64)
        stats = prime_cache_stats()["hash_to_prime"]
        misses_before = stats["misses"]
        bump_prime_cache_epoch()
        second = cached_hash_to_prime(seed, 64)
        assert second == first  # same deterministic function
        assert prime_cache_stats()["hash_to_prime"]["misses"] == misses_before + 1


class TestEpochRace:
    """Regression: cache keys must embed the epoch as read under the lock,
    and bumping must clear every cache (stale-epoch entries can never be hit
    again, so leaving them resident only evicts live entries)."""

    def test_bump_clears_all_caches(self):
        from repro.crypto.cache import _ALL_CACHES

        cached_hash_to_prime(b"race-resident", 64)
        cached_certified_prime(64, b"race-resident")
        assert any(len(cache) for cache in _ALL_CACHES)
        bump_prime_cache_epoch()
        assert all(len(cache) == 0 for cache in _ALL_CACHES)

    def test_epoch_reads_are_monotonic_under_concurrent_bumps(self):
        from repro.crypto.cache import prime_cache_epoch

        stop = threading.Event()
        seen: list[list[int]] = [[] for _ in range(4)]
        errors: list[BaseException] = []

        def reader(slot: int):
            try:
                while not stop.is_set():
                    seen[slot].append(prime_cache_epoch())
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=reader, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for _ in range(50):
            bump_prime_cache_epoch()
        stop.set()
        for t in threads:
            t.join()
        assert not errors
        for observations in seen:
            assert observations == sorted(observations)

    def test_concurrent_bump_and_lookup_stay_consistent(self):
        """Lookups racing epoch bumps must always return the right prime and
        never leave an entry filed under a dead epoch once the dust settles."""
        from repro.crypto.cache import _HASH_TO_PRIME_CACHE, prime_cache_epoch

        seeds = [b"race-%d" % i for i in range(8)]
        expected = {seed: hash_to_prime(seed, 64) for seed in seeds}
        errors: list[BaseException] = []
        stop = threading.Event()

        def lookup_worker():
            try:
                while not stop.is_set():
                    for seed in seeds:
                        assert cached_hash_to_prime(seed, 64) == expected[seed]
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def bump_worker():
            try:
                for _ in range(30):
                    bump_prime_cache_epoch()
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        readers = [threading.Thread(target=lookup_worker) for _ in range(3)]
        bumper = threading.Thread(target=bump_worker)
        for t in readers:
            t.start()
        bumper.start()
        bumper.join()
        stop.set()
        for t in readers:
            t.join()
        assert not errors
        # Quiesced: one final bump leaves nothing resident, and re-lookups
        # file everything under the current epoch only.
        final_epoch = bump_prime_cache_epoch()
        assert len(_HASH_TO_PRIME_CACHE) == 0
        for seed in seeds:
            assert cached_hash_to_prime(seed, 64) == expected[seed]
        assert prime_cache_epoch() == final_epoch
        with _HASH_TO_PRIME_CACHE._lock:
            keys = list(_HASH_TO_PRIME_CACHE._data)
        assert keys and all(key[0] == final_epoch for key in keys)
