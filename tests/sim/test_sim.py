"""Tests for the cost model, scheduler, clock, and network models."""

from __future__ import annotations

import pytest

from repro.sim.clock import VirtualClock
from repro.sim.costmodel import CostModel
from repro.sim.network import LAN, WAN, NetworkModel
from repro.sim.scheduler import ProverTask, schedule_tasks


class TestCostModel:
    def test_calibration_reproduces_dr_throughput(self):
        """The DR single-prover target must be recoverable from the model."""
        logic = 17  # representative compiled YCSB circuit size
        model = CostModel.calibrated(logic)
        n = 81_920
        prover_seconds = n * logic * model.prover_seconds_per_constraint
        total = prover_seconds + model.trace_seconds(2 * n) + model.db_seconds(n, "dr")
        throughput = n / total
        assert throughput == pytest.approx(714.2, rel=0.01)

    def test_keygen_prove_split_matches_fig7(self):
        model = CostModel.calibrated(17)
        ratio = model.keygen_per_constraint / model.prove_per_constraint
        assert ratio == pytest.approx(51 / 38, rel=1e-6)

    def test_2pl_gap_matches_calibration(self):
        logic = 17
        model = CostModel.calibrated(logic)
        per_txn = (logic + 2 * model.memcheck_constraints) * (
            model.prover_seconds_per_constraint
        )
        assert 1 / per_txn == pytest.approx(714.2 / 12.6, rel=0.05)

    def test_table_size_decay_shape(self):
        model = CostModel.calibrated(17)
        t0 = model.trace_seconds(1000, table_doublings=0)
        t1 = model.trace_seconds(1000, table_doublings=1)
        t3 = model.trace_seconds(1000, table_doublings=3)
        assert t0 < t1 < t3
        assert t1 / t0 == pytest.approx(1.111, rel=0.01)

    def test_contention_factor_slows_db(self):
        model = CostModel.calibrated(17)
        assert model.db_seconds(1000, "dr", 2.0) == pytest.approx(
            2 * model.db_seconds(1000, "dr", 1.0)
        )

    def test_overrides(self):
        model = CostModel.calibrated(17)
        faster = model.with_overrides(verify_seconds=1.0)
        assert faster.verify_seconds == 1.0
        assert faster.keygen_per_constraint == model.keygen_per_constraint

    def test_invalid_circuit_size(self):
        with pytest.raises(ValueError):
            CostModel.calibrated(0)


class TestScheduler:
    def test_single_worker_serializes(self):
        tasks = [ProverTask(cost_seconds=2.0) for _ in range(3)]
        result = schedule_tasks(tasks, 1)
        assert result.makespan_seconds == pytest.approx(6.0)
        assert result.completion_times == (2.0, 4.0, 6.0)

    def test_parallel_speedup(self):
        tasks = [ProverTask(cost_seconds=2.0) for _ in range(4)]
        assert schedule_tasks(tasks, 4).makespan_seconds == pytest.approx(2.0)
        assert schedule_tasks(tasks, 2).makespan_seconds == pytest.approx(4.0)

    def test_release_times_respected(self):
        tasks = [ProverTask(cost_seconds=1.0, release_seconds=5.0)]
        result = schedule_tasks(tasks, 8)
        assert result.makespan_seconds == pytest.approx(6.0)

    def test_amdahl_effect(self):
        """Serial release times bound the parallel speedup (Litmus-DRM)."""
        tasks = [
            ProverTask(cost_seconds=1.0, release_seconds=0.1 * i) for i in range(10)
        ]
        wide = schedule_tasks(tasks, 100).makespan_seconds
        assert wide == pytest.approx(0.9 + 1.0)

    def test_txn_weighted_latency(self):
        tasks = [
            ProverTask(cost_seconds=1.0, txn_count=1),
            ProverTask(cost_seconds=1.0, txn_count=3),
        ]
        result = schedule_tasks(tasks, 1)
        weighted = result.txn_weighted_mean_completion(tasks)
        assert weighted == pytest.approx((1 * 1.0 + 3 * 2.0) / 4)

    def test_empty_and_invalid(self):
        assert schedule_tasks([], 4).makespan_seconds == 0.0
        with pytest.raises(ValueError):
            schedule_tasks([ProverTask(cost_seconds=1.0)], 0)


class TestClock:
    def test_accumulates_and_normalizes(self):
        clock = VirtualClock()
        clock.charge("prove", 3.0)
        clock.charge("keygen", 1.0)
        clock.charge("prove", 1.0)
        assert clock.total() == pytest.approx(5.0)
        assert clock.breakdown()["prove"] == pytest.approx(0.8)

    def test_empty_breakdown(self):
        assert VirtualClock().breakdown() == {}

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock().charge("x", -1.0)


class TestNetwork:
    def test_paper_latencies(self):
        assert LAN.rtt_seconds == pytest.approx(1e-3)
        assert WAN.rtt_seconds == pytest.approx(100e-3)

    def test_payload_cost(self):
        model = NetworkModel(rtt_seconds=0.01, seconds_per_byte=1e-6)
        assert model.roundtrip(1000) == pytest.approx(0.011)
