"""Injectable clocks and the SimulatedChannel's clock routing.

The contract under test: ``SimulatedChannel`` never calls ``time.sleep``
itself — *all* waiting flows through the injected
:class:`~repro.sim.clock.Clock`, so a :class:`ManualClock` makes
latency-heavy channels instant and fully assertable, and the seeded
drop/delay stream is byte-identical with or without a clock attached.
"""

from __future__ import annotations

import pytest

from repro.errors import MessageDropped
from repro.sim import Clock, ManualClock, NetworkModel, SimulatedChannel, SystemClock


class TestManualClock:
    def test_sleep_advances_and_records(self):
        clock = ManualClock(start=10.0)
        clock.sleep(0.5)
        clock.sleep(0.25)
        assert clock.now() == pytest.approx(10.75)
        assert clock.sleeps == [0.5, 0.25]

    def test_advance_moves_time_without_recording(self):
        clock = ManualClock()
        clock.advance(3.0)
        assert clock.now() == 3.0
        assert clock.sleeps == []

    def test_negative_durations_rejected(self):
        clock = ManualClock()
        with pytest.raises(ValueError):
            clock.sleep(-1.0)
        with pytest.raises(ValueError):
            clock.advance(-1.0)


class TestSystemClock:
    def test_now_is_monotonic(self):
        clock = SystemClock()
        a = clock.now()
        b = clock.now()
        assert b >= a

    def test_non_positive_sleep_returns_immediately(self):
        # No time assertion needed: a negative sleep passed through to
        # time.sleep would raise ValueError.
        SystemClock().sleep(0.0)
        SystemClock().sleep(-5.0)

    def test_is_a_clock(self):
        assert isinstance(SystemClock(), Clock)
        assert isinstance(ManualClock(), Clock)


class TestChannelClockRouting:
    MODEL = NetworkModel(rtt_seconds=0.010, seconds_per_byte=0.001)

    def test_delivery_latency_spent_through_clock(self):
        clock = ManualClock()
        channel = SimulatedChannel(model=self.MODEL, clock=clock)
        latency = channel.deliver(payload_bytes=5)
        assert latency == pytest.approx(0.015)
        assert clock.sleeps == [pytest.approx(0.015)]
        assert clock.now() == pytest.approx(0.015)

    def test_drop_still_charges_the_wait(self):
        # The sender waited for the message that never arrived: the drop
        # spends the base latency through the clock before raising.
        clock = ManualClock()
        channel = SimulatedChannel(
            model=self.MODEL, seed=3, drop_probability=1.0, clock=clock
        )
        with pytest.raises(MessageDropped):
            channel.deliver(payload_bytes=0)
        assert clock.sleeps == [pytest.approx(0.010)]
        assert channel.dropped == 1

    def test_extra_delay_rides_the_same_sleep(self):
        clock = ManualClock()
        channel = SimulatedChannel(
            model=self.MODEL,
            seed=1,
            delay_probability=1.0,
            extra_delay_seconds=0.1,
            clock=clock,
        )
        latency = channel.deliver()
        assert latency == pytest.approx(0.110)
        assert clock.sleeps == [pytest.approx(0.110)]

    def test_no_clock_means_pure_accounting(self):
        channel = SimulatedChannel(model=self.MODEL)
        channel.deliver(payload_bytes=10)
        assert channel.virtual_seconds == pytest.approx(0.020)

    def test_seeded_stream_identical_with_and_without_clock(self):
        # The clock must not perturb the rng draws: the same seed produces
        # the same drop/delay sequence either way.
        def outcomes(clock):
            channel = SimulatedChannel(
                model=self.MODEL,
                seed=42,
                drop_probability=0.3,
                delay_probability=0.3,
                extra_delay_seconds=0.05,
                clock=clock,
            )
            events = []
            for _ in range(50):
                try:
                    events.append(round(channel.deliver(), 6))
                except MessageDropped:
                    events.append("drop")
            return events

        assert outcomes(None) == outcomes(ManualClock())

    def test_virtual_seconds_matches_manual_clock_total(self):
        clock = ManualClock()
        channel = SimulatedChannel(
            model=self.MODEL,
            seed=9,
            drop_probability=0.2,
            delay_probability=0.2,
            extra_delay_seconds=0.02,
            clock=clock,
        )
        for _ in range(30):
            try:
                channel.deliver(payload_bytes=2)
            except MessageDropped:
                pass
        assert clock.now() == pytest.approx(channel.virtual_seconds)
