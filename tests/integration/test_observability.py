"""Integration: the observability layer over a real two-batch YCSB run.

Acceptance criteria of the obs redesign, end to end:

- a full verification round through :class:`LitmusSession` produces one
  span tree covering every pipeline stage on both sides (server execute /
  certify / build_circuit / prove_piece and client verify);
- the crypto cache hit counters *increase* between two identical batches
  (the second batch re-derives the same primes and proving keys);
- the ``measured_*`` fields of :class:`TimingReport` agree with the span
  tree they are now derived from;
- the whole run exports as JSON lines and passes the CI schema checker.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

from repro import LitmusConfig, LitmusSession, YCSBWorkload
from repro.obs import JsonLinesExporter, Tracer, get_metrics, read_jsonl, stage_totals

REPO_ROOT = Path(__file__).resolve().parents[2]
NUM_TXNS = 8

SERVER_STAGES = {
    "batch",
    "execute",
    "certify_unit",
    "build_circuit",
    "prove_piece",
    "replay",
    "setup",
    "prove",
    "respond",
}
CLIENT_STAGES = {"verify", "verify_piece"}

# Caches whose reuse is state-independent: the pair-representative cache
# keys on (x, y) pairs that recur across identical batches, and the SNARK
# setup cache keys on circuit shape.  (hash_to_prime keys on key/VALUE
# pairs, so batch 1's writes change what batch 2 derives.)
WATCHED_COUNTERS = (
    "cache.pair_representative.hits",
    "snark.setup_cache.hits",
)


def _counter_values() -> dict[str, int]:
    snapshot = get_metrics().snapshot()
    return {name: snapshot.get(name, {}).get("value", 0) for name in WATCHED_COUNTERS}


def _submit_batch(session: LitmusSession, workload: YCSBWorkload) -> None:
    for txn in workload.generate(NUM_TXNS):
        session.submit("ycsb", txn.program, **txn.params)


@pytest.fixture()
def session(group) -> LitmusSession:
    workload = YCSBWorkload(num_rows=32, seed=7)
    config = LitmusConfig(
        cc="dr", processing_batch_size=4, batches_per_piece=1, prime_bits=64
    )
    return LitmusSession.create(
        initial=workload.initial_data(),
        config=config,
        group=group,
        tracer=Tracer(),
    )


class TestTwoBatchYCSB:
    def test_span_tree_and_cache_reuse(self, session, tmp_path):
        tracer = session.tracer
        hits_start = _counter_values()

        _submit_batch(session, YCSBWorkload(num_rows=32, seed=7))
        first = session.flush()
        assert first.accepted
        hits_after_first = _counter_values()

        # Identical second batch (same workload seed, fresh generator).
        _submit_batch(session, YCSBWorkload(num_rows=32, seed=7))
        second = session.flush()
        assert second.accepted
        hits_after_second = _counter_values()

        # One tree per batch, covering every server stage...
        batches = tracer.by_name("batch")
        assert len(batches) == 2
        for batch in batches:
            names = {r.name for r in tracer.spans_in(batch.root_id)}
            assert SERVER_STAGES <= names, f"missing {SERVER_STAGES - names}"
        # ...and the client's verify trees alongside them.
        assert CLIENT_STAGES <= tracer.names()
        verify_roots = {r.root_id for r in tracer.by_name("verify")}
        assert len(verify_roots) == 2

        # Cache reuse grows across identical batches.
        for name in WATCHED_COUNTERS:
            first_delta = hits_after_first[name] - hits_start[name]
            second_delta = hits_after_second[name] - hits_after_first[name]
            assert second_delta > 0, f"{name} saw no hits in the second batch"
            assert second_delta >= first_delta, (
                f"{name}: second identical batch should hit at least as "
                f"often as the first ({second_delta} < {first_delta})"
            )

        # The full export round-trips and satisfies the CI schema checker.
        path = tmp_path / "obs.jsonl"
        session.export(JsonLinesExporter(str(path)))
        records = read_jsonl(str(path))
        kinds = {r["kind"] for r in records}
        assert kinds == {"span", "metric"}
        proc = subprocess.run(
            [
                sys.executable,
                str(REPO_ROOT / "benchmarks/check_metrics_schema.py"),
                str(path),
            ],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stderr

    def test_measured_fields_agree_with_span_tree(self, session):
        _submit_batch(session, YCSBWorkload(num_rows=32, seed=7))
        result = session.flush()
        assert result.accepted
        timing = result.timing

        tracer = session.tracer
        (batch,) = tracer.by_name("batch")
        tree = tracer.spans_in(batch.root_id)
        totals = stage_totals(tree)

        approx = lambda v: pytest.approx(v, rel=1e-6, abs=1e-9)
        assert timing.measured_db_seconds == approx(totals["execute"])
        assert timing.measured_certify_seconds == approx(totals["certify_unit"])
        assert timing.measured_circuit_seconds == approx(totals["build_circuit"])
        assert timing.measured_replay_seconds == approx(totals["replay"])
        assert timing.measured_setup_seconds == approx(totals["setup"])
        assert timing.measured_prove_seconds == approx(totals["prove"])
        assert timing.measured_total_seconds == approx(totals["batch"])
        # Wall-clock of the concurrent prove stage is bounded by the summed
        # work and by the whole batch.
        assert 0 < timing.measured_prove_wall_seconds <= timing.measured_total_seconds
        assert (
            timing.measured_prove_wall_seconds
            <= totals["prove_piece"] + totals["execute"] + totals["certify_unit"]
        )
        # Derived views stay consistent with the same tree.
        assert timing.measured_prover_work_seconds == approx(
            totals["replay"] + totals["setup"] + totals["prove"]
        )
        pieces = len([r for r in tree if r.name == "prove_piece"])
        assert timing.num_pieces == pieces
        assert batch.attrs["num_txns"] == NUM_TXNS
