"""Soak: a seeded multi-client swarm vs a live server that dies mid-run.

Marked ``@pytest.mark.soak`` and excluded from tier-1 (its own CI job runs
``pytest -m soak``).  The scenario:

- several client threads hammer one networked service with randomized
  (but seeded — every run is the same run) bank transfers, each behind a
  lossy :class:`~repro.sim.network.SimulatedChannel` injecting drops and
  delays into the live sockets;
- mid-soak the service is drained and shut down, the durable directory is
  recovered by a fresh process (``LitmusSession.recover``), and a new
  service takes over the same port; clients reconnect and resubmit
  through the idempotent resolve path;
- the oracle: every flush a client saw acknowledged is in the recovered
  digest chain (acked work is exactly-once), every client converges on
  the same final digest as the server, and the total balance across
  accounts is conserved — no lost, duplicated, or phantom transfers.
"""

from __future__ import annotations

import random
import threading
import time

import pytest

from repro.core import LitmusConfig, LitmusSession, RetryPolicy
from repro.core.session import DurabilityConfig
from repro.errors import NetworkError
from repro.net import LitmusService, RemoteSession, ServiceConfig
from repro.obs.metrics import MetricsRegistry
from repro.sim import NetworkModel, SimulatedChannel
from repro.vc.program import (
    Add,
    Emit,
    KeyTemplate,
    Param,
    Program,
    ReadStmt,
    ReadVal,
    Sub,
    WriteStmt,
)

TRANSFER = Program(
    name="soak-transfer",
    params=("src", "dst", "amount"),
    statements=(
        ReadStmt("s", KeyTemplate(("acct", Param("src")))),
        ReadStmt("d", KeyTemplate(("acct", Param("dst")))),
        WriteStmt(
            KeyTemplate(("acct", Param("src"))), Sub(ReadVal("s"), Param("amount"))
        ),
        WriteStmt(
            KeyTemplate(("acct", Param("dst"))), Add(ReadVal("d"), Param("amount"))
        ),
        Emit(Add(ReadVal("s"), ReadVal("d"))),
    ),
)

NUM_ACCOUNTS = 16
TOTAL_BALANCE = NUM_ACCOUNTS * 100
CONFIG = LitmusConfig(
    cc="dr", processing_batch_size=2, batches_per_piece=2, prime_bits=64
)
NUM_CLIENTS = 4
ROUNDS_PER_CLIENT = 6
SOAK_SEED = 20260806


class ClientWorker(threading.Thread):
    """One swarm member: seeded traffic through a lossy channel."""

    def __init__(self, index: int, host: str, port: int):
        super().__init__(name=f"soak-client-{index}", daemon=True)
        self.rng = random.Random(SOAK_SEED + index)
        self.session = RemoteSession(
            host,
            port,
            client_id=f"soak-{index}",
            retry_policy=RetryPolicy(max_attempts=12, backoff=0.05),
            io_timeout=0.5,
            registry=MetricsRegistry(),
            channel=SimulatedChannel(
                model=NetworkModel(rtt_seconds=0.0),
                seed=SOAK_SEED * 31 + index,
                drop_probability=0.12,
                delay_probability=0.2,
                extra_delay_seconds=0.005,
            ),
        )
        self.acked_digests: list[int] = []
        self.acked_txns = 0
        self.failures: list[BaseException] = []

    def run(self) -> None:
        try:
            for _round in range(ROUNDS_PER_CLIENT):
                for _ in range(self.rng.randint(1, 3)):
                    src = self.rng.randrange(NUM_ACCOUNTS)
                    dst = (src + self.rng.randrange(1, NUM_ACCOUNTS)) % NUM_ACCOUNTS
                    self.session.submit(
                        f"user-{self.name}",
                        "soak-transfer",
                        src=src,
                        dst=dst,
                        amount=self.rng.randint(0, 5),
                    )
                result = self._flush_with_patience()
                assert result.accepted, result.reason
                self.acked_txns += result.num_txns
                self.acked_digests.append(self.session.digest)
                time.sleep(self.rng.uniform(0.0, 0.05))
        except BaseException as exc:  # noqa: BLE001 — surfaced by the test
            self.failures.append(exc)
        finally:
            try:
                self.session.close()
            except Exception:
                pass

    def _flush_with_patience(self):
        # The restart window can outlast one retry-policy budget; the soak
        # client keeps trying, exactly as a real supervisor-backed client
        # would.
        from repro.errors import DeadlineExceeded

        deadline = time.monotonic() + 120.0
        while True:
            try:
                return self.session.flush(timeout=30.0)
            except (NetworkError, DeadlineExceeded):
                if time.monotonic() >= deadline:
                    raise
                time.sleep(0.2)


@pytest.mark.soak
def test_swarm_survives_faults_and_a_mid_soak_restart(group, tmp_path):
    wal_dir = str(tmp_path / "wal")
    registry = MetricsRegistry()
    session = LitmusSession.create(
        initial={("acct", i): 100 for i in range(NUM_ACCOUNTS)},
        config=CONFIG,
        group=group,
        registry=registry,
        durability=DurabilityConfig(directory=wal_dir),
    )
    service = LitmusService(
        session,
        programs=[TRANSFER],
        config=ServiceConfig(queue_limit=32),
        registry=registry,
    )
    host, port = service.start()

    workers = [ClientWorker(i, host, port) for i in range(NUM_CLIENTS)]
    for worker in workers:
        worker.start()

    # Let the swarm make real progress, then kill the server mid-soak.
    deadline = time.monotonic() + 60.0
    while (
        sum(len(w.acked_digests) for w in workers) < NUM_CLIENTS
        and time.monotonic() < deadline
    ):
        time.sleep(0.05)
    pre_restart_digests = {
        digest for worker in workers for digest in worker.acked_digests
    }
    assert pre_restart_digests, "swarm made no progress before the restart"
    service.shutdown()

    # A fresh process recovers the durable directory and takes the port.
    recovered = LitmusSession.recover(
        wal_dir, [TRANSFER], group=group, registry=registry
    )
    assert recovered.recovery_report is not None
    service2 = LitmusService(
        recovered,
        programs=[TRANSFER],
        config=ServiceConfig(host=host, port=port, queue_limit=32),
        registry=registry,
    )
    service2.start()

    for worker in workers:
        worker.join(timeout=180.0)
        assert not worker.is_alive(), f"{worker.name} never finished"
    for worker in workers:
        assert not worker.failures, worker.failures[0]

    # Every flush acked before the restart is in the recovered chain
    # (shutdown drained and the WAL barrier held): zero lost acked batches.
    chain = {entry.digest for entry in recovered.digest_log.entries()}
    lost = pre_restart_digests - chain
    assert not lost, f"acked digests missing after recovery: {len(lost)}"

    # Convergence: every client's final verified digest is the server's.
    final_digest = recovered.digest
    for worker in workers:
        assert worker.acked_digests[-1] == final_digest or (
            worker.acked_digests[-1] in chain
        )
        status_digest = None
        try:
            client = RemoteSession(host, port, registry=MetricsRegistry())
            status_digest = client.status()["digest"]
            client.close()
        except NetworkError:
            pass
        if status_digest is not None:
            assert status_digest == final_digest

    # Conservation oracle: transfers moved money around, never created or
    # destroyed it — across drops, delays, sheds, and one restart.
    balance = sum(
        recovered.server.db.get(("acct", i)) for i in range(NUM_ACCOUNTS)
    )
    assert balance == TOTAL_BALANCE
    total_acked = sum(worker.acked_txns for worker in workers)
    assert total_acked >= NUM_CLIENTS * ROUNDS_PER_CLIENT  # ≥1 txn per round
    service2.shutdown()


NUM_SHARDS = 4


@pytest.mark.soak
def test_sharded_swarm_survives_a_mid_soak_restart(group, tmp_path):
    """The same soak against a 4-shard engine, restarted mid-run.

    The swarm's randomized transfers mix single- and cross-shard traffic
    (accounts hash across all four shards); mid-soak the service is
    drained, every shard's WAL directory is recovered independently by
    ``ShardedSession.recover``, and a fresh service takes the port.  The
    oracle adds the sharded clause: every acknowledged flush's
    per-shard digest components are in the matching shard's recovered
    chain — zero lost acked flushes — and clients converge on the
    recovered digest vector.
    """
    from repro.core import ShardedSession

    wal_dir = str(tmp_path / "sharded-wal")
    registry = MetricsRegistry()
    session = ShardedSession.create(
        initial={("acct", i): 100 for i in range(NUM_ACCOUNTS)},
        config=CONFIG,
        num_shards=NUM_SHARDS,
        group=group,
        registry=registry,
        durability=DurabilityConfig(directory=wal_dir),
    )
    service = LitmusService(
        session,
        programs=[TRANSFER],
        config=ServiceConfig(queue_limit=32, num_shards=NUM_SHARDS),
        registry=registry,
    )
    host, port = service.start()

    workers = [ClientWorker(i, host, port) for i in range(NUM_CLIENTS)]
    for worker in workers:
        worker.start()

    deadline = time.monotonic() + 60.0
    while (
        sum(len(w.acked_digests) for w in workers) < NUM_CLIENTS
        and time.monotonic() < deadline
    ):
        time.sleep(0.05)
    pre_restart = [
        digest for worker in workers for digest in worker.acked_digests
    ]
    assert pre_restart, "swarm made no progress before the restart"
    # sharded service, sharded digests: every ack carried the full vector
    assert all(len(digest.shards) == NUM_SHARDS for digest in pre_restart)
    service.shutdown()

    recovered = ShardedSession.recover(
        wal_dir, [TRANSFER], group=group, registry=registry
    )
    assert len(recovered.recovery_reports) == NUM_SHARDS
    service2 = LitmusService(
        recovered,
        programs=[TRANSFER],
        config=ServiceConfig(
            host=host, port=port, queue_limit=32, num_shards=NUM_SHARDS
        ),
        registry=registry,
    )
    service2.start()

    for worker in workers:
        worker.join(timeout=180.0)
        assert not worker.is_alive(), f"{worker.name} never finished"
    for worker in workers:
        assert not worker.failures, worker.failures[0]

    # Zero lost acked flushes: each pre-restart vector's components are in
    # the matching shard's recovered digest chain (shards recover
    # independently, so the check is per shard, not on the fold).
    chains = [
        {entry.digest for entry in shard.digest_log.entries()}
        for shard in recovered.shards
    ]
    for vector in pre_restart:
        for index, component in enumerate(vector.shards):
            assert component in chains[index], (
                f"acked shard-{index} digest missing after recovery"
            )

    # Convergence: every client's final vector components are chained, and
    # a fresh client sees the recovered fold.
    for worker in workers:
        final = worker.acked_digests[-1]
        for index, component in enumerate(final.shards):
            assert component in chains[index]
    try:
        probe = RemoteSession(host, port, registry=MetricsRegistry())
        status = probe.status()
        assert status["shards"] == NUM_SHARDS
        assert status["digest"] == int(recovered.digest)
        probe.close()
    except NetworkError:
        pass

    sm = recovered.shard_map
    balance = sum(
        recovered.shards[sm.shard_of(("acct", i))].server.db.get(("acct", i))
        for i in range(NUM_ACCOUNTS)
    )
    assert balance == TOTAL_BALANCE
    total_acked = sum(worker.acked_txns for worker in workers)
    assert total_acked >= NUM_CLIENTS * ROUNDS_PER_CLIENT
    service2.shutdown()
