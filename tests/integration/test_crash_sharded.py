"""Sharded crash recovery: shards fail — and repair — independently.

Marked ``@pytest.mark.crash`` (its own CI job runs ``pytest -m crash``).
The scenario the ISSUE pins: a per-shard :class:`CrashPoint` kills the
process after one shard's WAL append (ack never sent), a
:class:`TornWrite` tears that shard's tail, every *other* shard's
directory stays clean — and ``ShardedSession.recover`` must repair the
torn shard alone, replay the rest untouched, and converge every shard's
rebuilt digest onto the last acknowledged :class:`DigestVector`.
"""

from __future__ import annotations

import os

import pytest

from repro.core import (
    DigestVector,
    DurabilityConfig,
    LitmusConfig,
    ShardedSession,
)
from repro.errors import SimulatedCrash
from repro.faults import CrashPoint, FaultPlan, TornWrite
from repro.obs.metrics import MetricsRegistry
from repro.vc.program import (
    Add,
    Emit,
    KeyTemplate,
    Param,
    Program,
    ReadStmt,
    ReadVal,
    Sub,
    WriteStmt,
)

TRANSFER = Program(
    name="crash-shard-transfer",
    params=("src", "dst", "amount"),
    statements=(
        ReadStmt("s", KeyTemplate(("acct", Param("src")))),
        ReadStmt("d", KeyTemplate(("acct", Param("dst")))),
        WriteStmt(
            KeyTemplate(("acct", Param("src"))), Sub(ReadVal("s"), Param("amount"))
        ),
        WriteStmt(
            KeyTemplate(("acct", Param("dst"))), Add(ReadVal("d"), Param("amount"))
        ),
        Emit(Add(ReadVal("s"), ReadVal("d"))),
    ),
)

NUM_ACCOUNTS = 16
NUM_SHARDS = 4
CONFIG = LitmusConfig(
    cc="dr", processing_batch_size=2, batches_per_piece=2, prime_bits=64
)


@pytest.mark.crash
def test_torn_shard_repairs_independently(group, tmp_path):
    directory = str(tmp_path / "sharded")
    initial = {("acct", i): 100 for i in range(NUM_ACCOUNTS)}

    # Pick the crash-target shard and two accounts it owns, plus a pair of
    # same-shard accounts elsewhere for the clean-shard traffic.
    from repro.core import ShardMap

    sm = ShardMap(NUM_SHARDS)
    by_shard: dict[int, list[int]] = {}
    for i in range(NUM_ACCOUNTS):
        by_shard.setdefault(sm.shard_of(("acct", i)), []).append(i)
    target = next(s for s, accts in sorted(by_shard.items()) if len(accts) >= 2)
    other = next(
        s for s, accts in sorted(by_shard.items()) if s != target and len(accts) >= 2
    )
    t_src, t_dst = by_shard[target][:2]
    o_src, o_dst = by_shard[other][:2]

    # The after-log crash on the target shard, third append there: the
    # record hits the platter, the acknowledgement never happens.  Being
    # shard-scoped, it must never fire on any other shard's durability.
    plan = FaultPlan(CrashPoint("after-log", skip=2, shard=target), seed=11)
    session = ShardedSession.create(
        initial=initial,
        config=CONFIG,
        num_shards=NUM_SHARDS,
        group=group,
        registry=MetricsRegistry(),
        fault_plan=plan,
        durability=DurabilityConfig(directory=directory),
    )
    acked: list[DigestVector] = []
    with pytest.raises(SimulatedCrash) as crash_info:
        for _ in range(8):
            # one single-shard txn on the target shard, one on a clean
            # shard — so the doomed flush touches only the target shard
            # and every acked vector component is genuinely acknowledged
            session.submit("u", TRANSFER, src=t_src, dst=t_dst, amount=1)
            assert session.flush().accepted
            acked.append(DigestVector(session.digest.shards))
            session.submit("u", TRANSFER, src=o_src, dst=o_dst, amount=1)
            assert session.flush().accepted
            acked.append(DigestVector(session.digest.shards))
    assert f"shard {target}" in str(crash_info.value)
    assert len(acked) >= 4, "crash fired before any acknowledged work"

    # The torn tail lands on the crashed shard only; the others stay clean.
    shard_dir = os.path.join(directory, f"shard-{target:02d}")
    TornWrite().apply(shard_dir)

    recovered = ShardedSession.recover(
        directory, [TRANSFER], group=group, registry=MetricsRegistry()
    )
    try:
        reports = recovered.recovery_reports
        assert len(reports) == NUM_SHARDS
        # independent repair: exactly the torn shard was truncated
        assert reports[target].truncations >= 1
        for index, report in enumerate(reports):
            if index != target:
                assert report.truncations == 0 and report.dropped_segments == 0

        # per-shard digest cross-check: each rebuilt engine agrees with its
        # own server, and the vector equals the last acknowledged one —
        # the torn (never-acked) record was repaired away, nothing acked
        # was lost.
        for shard in recovered.shards:
            assert int(shard.digest) == shard.server.digest
        assert recovered.digest == acked[-1]

        # conservation + liveness across the recovered fleet, including a
        # cross-shard transfer
        balance = sum(
            recovered.shards[sm.shard_of(("acct", i))].server.db.get(("acct", i))
            for i in range(NUM_ACCOUNTS)
        )
        assert balance == NUM_ACCOUNTS * 100
        ticket = recovered.submit("u", TRANSFER, src=t_src, dst=o_dst, amount=2)
        assert recovered.flush().accepted and ticket.accepted
    finally:
        recovered.close()


@pytest.mark.crash
def test_shard_scoped_crash_point_ignores_other_shards(group, tmp_path):
    """A CrashPoint bound to shard k must not trip on shard j's appends."""
    from repro.core import ShardMap

    sm = ShardMap(2)
    accounts = [i for i in range(NUM_ACCOUNTS)]
    shard0 = [i for i in accounts if sm.shard_of(("acct", i)) == 0]
    assert len(shard0) >= 2
    plan = FaultPlan(CrashPoint("after-log", skip=0, shard=1), seed=3)
    session = ShardedSession.create(
        initial={("acct", i): 100 for i in range(NUM_ACCOUNTS)},
        config=CONFIG,
        num_shards=2,
        group=group,
        registry=MetricsRegistry(),
        fault_plan=plan,
        durability=DurabilityConfig(directory=str(tmp_path / "scoped")),
    )
    try:
        # shard-0-only traffic never reaches the shard-1 crash point
        for _ in range(3):
            session.submit("u", TRANSFER, src=shard0[0], dst=shard0[1], amount=1)
            assert session.flush().accepted
        assert plan.injected == 0
    finally:
        session.close()
