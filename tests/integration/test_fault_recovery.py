"""Integration tests for the full desync story: inject → reject → rollback
→ resync → retry → re-verify.

The unmarked tests are acceptance-critical and run in tier-1.  The
exhaustive per-fault-class sweep carries ``@pytest.mark.faults`` and runs
in its own CI job (``pytest -m faults``); the default ``addopts`` excludes
the marker.
"""

from __future__ import annotations

import pytest

from repro.core import LitmusConfig, LitmusSession, RetryPolicy
from repro.errors import RetryExhausted, ServerDesyncError
from repro.faults import (
    BitFlipWitness,
    CorruptProofPiece,
    DropMessage,
    DropPiece,
    FaultPlan,
    KillProver,
    ReorderPieces,
    TamperEndDigest,
    TamperPublicStatement,
)
from repro.obs.metrics import MetricsRegistry
from repro.vc.program import (
    Add,
    Emit,
    KeyTemplate,
    Param,
    Program,
    ReadStmt,
    ReadVal,
    Sub,
    WriteStmt,
)

TRANSFER = Program(
    name="fr-transfer",
    params=("src", "dst", "amount"),
    statements=(
        ReadStmt("s", KeyTemplate(("acct", Param("src")))),
        ReadStmt("d", KeyTemplate(("acct", Param("dst")))),
        WriteStmt(
            KeyTemplate(("acct", Param("src"))), Sub(ReadVal("s"), Param("amount"))
        ),
        WriteStmt(
            KeyTemplate(("acct", Param("dst"))), Add(ReadVal("d"), Param("amount"))
        ),
        Emit(Add(ReadVal("s"), ReadVal("d"))),
    ),
)

NUM_ACCOUNTS = 8
CONFIG = LitmusConfig(
    cc="dr", processing_batch_size=2, batches_per_piece=2, prime_bits=64
)

FAULT_FACTORIES = {
    "corrupt_proof": lambda: CorruptProofPiece(piece=0),
    "tamper_statement": lambda: TamperPublicStatement(piece=0),
    "tamper_digest": lambda: TamperEndDigest(piece=0),
    "drop_piece": lambda: DropPiece(piece=0),
    "reorder_pieces": lambda: ReorderPieces(),
    "bitflip_write_witness": lambda: BitFlipWitness(unit=0, which="write"),
    "bitflip_read_witness": lambda: BitFlipWitness(unit=0, which="read"),
    "kill_prover": lambda: KillProver(piece=0),
    "drop_request": lambda: DropMessage(direction="request"),
    "drop_response": lambda: DropMessage(direction="response"),
}


def _session(group, plan=None, policy=None, registry=None) -> LitmusSession:
    return LitmusSession.create(
        initial={("acct", i): 100 for i in range(NUM_ACCOUNTS)},
        config=CONFIG,
        group=group,
        registry=registry,
        retry_policy=policy,
        fault_plan=plan,
    )


def _submit_transfers(session, count=6):
    for i in range(count):
        session.submit(
            f"user{i % 3}", TRANSFER, src=i, dst=(i + 1) % NUM_ACCOUNTS, amount=5
        )


def _assert_recovered(session, result, plan, registry=None):
    """The acceptance predicate: detected, rolled back, resynced, verified."""
    assert plan.injected >= 1, "the fault never fired"
    assert session.batches_rejected >= 1, "the client never rejected"
    assert result.accepted, result.reason
    assert result.attempts >= 2
    assert session.digest == session.server.digest
    balance = sum(session.server.db.get(("acct", i)) for i in range(NUM_ACCOUNTS))
    assert balance == NUM_ACCOUNTS * 100
    if registry is not None:
        snap = registry.snapshot()
        assert snap["faults.injected"]["value"] >= 1
        assert snap["session.rejections"]["value"] >= 1
        assert snap["session.retries"]["value"] >= 1
        assert snap["session.resyncs"]["value"] >= 1


class TestAcceptance:
    """The scripted adversarial run of ISSUE 3's acceptance criteria."""

    def test_corrupt_proof_piece_full_story(self, group):
        registry = MetricsRegistry()
        plan = FaultPlan(CorruptProofPiece(piece=0), seed=7)
        session = _session(
            group,
            plan=plan,
            policy=RetryPolicy(max_attempts=3, backoff=0.0),
            registry=registry,
        )
        _submit_transfers(session)
        digest_before = session.digest
        result = session.flush()

        # Client rejected the tampered round, the server rolled back, one
        # resync re-derived the trusted state, and the retry re-committed.
        assert session.resyncs == 1
        _assert_recovered(session, result, plan, registry)
        assert session.digest != digest_before  # the batch really landed
        event = plan.events[0]
        assert (event.kind, event.stage) == ("corrupt_proof", "response")

    def test_rejection_without_policy_still_rolls_back(self, group):
        """The core bugfix: a rejected batch must not leave the server's
        digest permanently ahead of the client's."""
        plan = FaultPlan(CorruptProofPiece(piece=0), seed=7)
        session = _session(group, plan=plan)  # no retry policy: single shot
        _submit_transfers(session)
        result = session.flush()
        assert not result.accepted
        assert result.attempts == 1
        # Rolled back: server and client agree on the pre-batch state.
        assert session.server.digest == session.digest
        assert session.server.db.get(("acct", 0)) == 100
        # And the session is not poisoned — a clean batch verifies next.
        _submit_transfers(session)
        assert session.flush().accepted

    def test_tickets_resolve_through_recovery(self, group):
        plan = FaultPlan(TamperEndDigest(piece=0), seed=3)
        session = _session(group, plan=plan, policy=RetryPolicy(max_attempts=2))
        ticket = session.submit("alice", TRANSFER, src=0, dst=1, amount=30)
        result = session.flush()
        assert result.accepted
        assert ticket.accepted
        assert ticket.outputs == (200,)  # pre-transfer s + d
        assert session.last_result is result


class TestExhaustion:
    def test_persistent_fault_returns_rejected_result(self, group):
        plan = FaultPlan(CorruptProofPiece(piece=0, times=None), seed=7)
        session = _session(group, plan=plan, policy=RetryPolicy(max_attempts=3))
        _submit_transfers(session)
        digest_before = session.digest
        result = session.flush()
        assert not result.accepted
        assert result.attempts == 3
        assert session.batches_rejected == 3
        assert session.retries == 2
        # Every attempt was rolled back: nothing unverified survives.
        assert session.digest == digest_before
        assert session.server.digest == digest_before

    def test_raise_on_exhaustion(self, group):
        plan = FaultPlan(TamperEndDigest(piece=0, times=None), seed=7)
        session = _session(
            group,
            plan=plan,
            policy=RetryPolicy(max_attempts=2, raise_on_exhaustion=True),
        )
        _submit_transfers(session, count=2)
        with pytest.raises(RetryExhausted) as excinfo:
            session.flush()
        assert excinfo.value.attempts == 2
        # last_result still records the rejection for post-mortems.
        assert session.last_result is not None
        assert not session.last_result.accepted


class TestResync:
    def test_resync_reproduces_digest_after_verified_batches(self, group):
        session = _session(group, policy=RetryPolicy(max_attempts=2))
        for _ in range(2):
            _submit_transfers(session, count=2)
            assert session.flush().accepted
        snapshot_before = session.server.db.snapshot()
        digest = session.resync()
        assert digest == session.digest == session.server.digest
        assert session.server.db.snapshot() == snapshot_before

    def test_tampered_checkpoint_raises_desync(self, group):
        registry = MetricsRegistry()
        session = _session(group, registry=registry)
        _submit_transfers(session, count=2)
        assert session.flush().accepted
        # Corrupt the durable history resync replays from.
        session._base_state[("acct", 0)] = 10**6
        with pytest.raises(ServerDesyncError):
            session.resync()
        assert registry.snapshot()["session.resync_failures"]["value"] == 1


@pytest.mark.faults
class TestFaultClassSweep:
    """Every fault class drives the same detect→rollback→resync→retry story."""

    @pytest.mark.parametrize("kind", sorted(FAULT_FACTORIES))
    def test_recovery(self, group, kind):
        registry = MetricsRegistry()
        plan = FaultPlan(FAULT_FACTORIES[kind](), seed=11)
        session = _session(
            group,
            plan=plan,
            policy=RetryPolicy(max_attempts=3, backoff=0.0),
            registry=registry,
        )
        _submit_transfers(session)
        result = session.flush()
        _assert_recovered(session, result, plan, registry)
