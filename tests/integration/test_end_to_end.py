"""Capstone integration tests: full workloads through the whole stack.

Each test exercises workload generation -> CC execution -> memory-integrity
certification -> circuit construction -> proving -> client verification,
with cross-checks against independent oracles (direct interpretation, the
Elle checker, conservation invariants).
"""

from __future__ import annotations

import pytest

from repro.core import LitmusClient, LitmusConfig, LitmusServer
from repro.verify.elle import ElleChecker, history_from_execution
from repro.workloads.tpcc import TPCCWorkload
from repro.workloads.ycsb import YCSBWorkload

PRIME_BITS = 64


class TestYCSBEndToEnd:
    @pytest.mark.parametrize("cc", ["dr", "2pl"])
    def test_verified_ycsb_batch(self, group, cc):
        workload = YCSBWorkload(num_rows=128, theta=0.8, seed=31)
        config = LitmusConfig(
            cc=cc, processing_batch_size=16, batches_per_piece=4,
            prime_bits=PRIME_BITS, num_db_threads=2,
        )
        server = LitmusServer(
            initial=workload.initial_data(), config=config, group=group
        )
        client = LitmusClient(group, server.digest, config=config)
        txns = workload.generate(40)
        response = server.execute_batch(txns)
        verdict = client.verify_response(txns, response)
        assert verdict.accepted, verdict.reason
        # Outputs of read operations match the server's final state oracle
        # only for the last reader; spot-check one read-only transaction.
        assert set(verdict.outputs) == {t.txn_id for t in txns}

    def test_three_sequential_batches(self, group):
        workload = YCSBWorkload(num_rows=64, theta=0.6, seed=32)
        config = LitmusConfig(
            cc="dr", processing_batch_size=16, prime_bits=PRIME_BITS
        )
        server = LitmusServer(
            initial=workload.initial_data(), config=config, group=group
        )
        client = LitmusClient(group, server.digest, config=config)
        start = 1
        for _ in range(3):
            txns = workload.generate(15, start_id=start)
            start += 15
            verdict = client.verify_response(txns, server.execute_batch(txns))
            assert verdict.accepted, verdict.reason
        assert client.digest == server.digest

    def test_execution_is_elle_serializable(self):
        workload = YCSBWorkload(num_rows=64, theta=1.0, seed=33)
        from repro.db.database import Database

        db = Database(initial=workload.initial_data(), cc="dr", processing_batch_size=16)
        txns = workload.generate(120)
        report = db.run(txns)
        history = history_from_execution(report, txns)
        assert ElleChecker().check(history).serializable


class TestTPCCEndToEnd:
    def test_verified_payments_conserve_ytd(self, group):
        workload = TPCCWorkload(
            num_warehouses=2, districts_per_warehouse=2,
            customers_per_district=4, num_items=10, order_lines=3, seed=41,
        )
        config = LitmusConfig(cc="dr", processing_batch_size=8, prime_bits=PRIME_BITS)
        server = LitmusServer(initial=workload.initial_data(), config=config, group=group)
        client = LitmusClient(group, server.digest, config=config)
        txns = workload.generate_payments(10)
        verdict = client.verify_response(txns, server.execute_batch(txns))
        assert verdict.accepted, verdict.reason
        paid = sum(t.params["amount"] for t in txns)
        collected = sum(
            server.db.get(("warehouse_ytd", w)) for w in range(2)
        )
        assert collected == paid

    def test_verified_new_orders(self, group):
        workload = TPCCWorkload(
            num_warehouses=2, districts_per_warehouse=2,
            customers_per_district=4, num_items=12, order_lines=3, seed=42,
        )
        config = LitmusConfig(cc="dr", processing_batch_size=4, prime_bits=PRIME_BITS)
        server = LitmusServer(initial=workload.initial_data(), config=config, group=group)
        client = LitmusClient(group, server.digest, config=config)
        txns = workload.generate_new_orders(6)
        verdict = client.verify_response(txns, server.execute_batch(txns))
        assert verdict.accepted, verdict.reason
        # Every order's oid-sequence check bit must be 1.
        for txn in txns:
            assert verdict.outputs[txn.txn_id][1] == 1
        # Orders landed in the database.
        for txn in txns:
            key = ("order", txn.params["w"], txn.params["d"], txn.params["oid"])
            assert server.db.get(key) == txn.params["c"]

    def test_mixed_workload(self, group):
        workload = TPCCWorkload(
            num_warehouses=2, districts_per_warehouse=2,
            customers_per_district=4, num_items=12, order_lines=3, seed=43,
        )
        config = LitmusConfig(cc="dr", processing_batch_size=8, prime_bits=PRIME_BITS)
        server = LitmusServer(initial=workload.initial_data(), config=config, group=group)
        client = LitmusClient(group, server.digest, config=config)
        txns = workload.generate_mix(12)
        verdict = client.verify_response(txns, server.execute_batch(txns))
        assert verdict.accepted, verdict.reason


class TestBackendsAgree:
    def test_groth16_and_spotcheck_accept_the_same_batch(self, group):
        workload = YCSBWorkload(num_rows=64, theta=0.6, seed=44)
        txns = workload.generate(12)
        for backend in ("groth16", "spotcheck"):
            config = LitmusConfig(
                cc="dr", processing_batch_size=8, prime_bits=PRIME_BITS,
                backend=backend,
            )
            server = LitmusServer(
                initial=workload.initial_data(), config=config, group=group
            )
            client = LitmusClient(group, server.digest, config=config)
            verdict = client.verify_response(list(txns), server.execute_batch(list(txns)))
            assert verdict.accepted, f"{backend}: {verdict.reason}"
