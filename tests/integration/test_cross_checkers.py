"""Cross-checker property tests: three independent serializability oracles.

For random workloads under both CC algorithms, the execution must be
certified serializable by (1) the Elle-style list-append checker, (2) the
Cobra-style polygraph checker, and (3) direct serial replay in schedule
order.  Three independently implemented oracles agreeing is strong evidence
the executors are actually serializable — and that the checkers themselves
are not vacuously permissive (the anomaly tests in tests/verify prove they
reject bad histories).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.database import Database
from repro.db.kvstore import KVStore
from repro.db.txn import Transaction
from repro.verify.elle import ElleChecker, history_from_execution
from repro.verify.polygraph import RWHistory, check_serializable

from ..db.helpers import INCREMENT, READ_ONLY

workload_spec = st.lists(
    st.tuples(
        st.booleans(),  # True: increment, False: read-only
        st.integers(min_value=0, max_value=3),  # key
    ),
    min_size=2,
    max_size=24,
)


def build_txns(spec):
    return [
        Transaction(i + 1, INCREMENT if is_write else READ_ONLY, {"k": key})
        for i, (is_write, key) in enumerate(spec)
    ]


def replay_in_schedule_order(report, txns) -> bool:
    """Oracle 3: serial replay reproduces every observed read and output."""
    by_id = {t.txn_id: t for t in txns}
    state = KVStore()
    for unit in report.schedule:
        snapshot = {key: state.get(key) for key, _v in unit.reads}
        for txn_id in unit.txn_ids:
            txn = by_id[txn_id]
            result = txn.program.execute(
                txn.params, lambda key: snapshot.get(key, state.get(key))
            )
            if result.outputs != report.results[txn_id].outputs:
                return False
        for key, value in unit.writes:
            state.put(key, value)
    return True


class TestThreeOracles:
    @given(workload_spec, st.integers(min_value=2, max_value=8))
    @settings(max_examples=40, deadline=None)
    def test_dr_certified_by_all_oracles(self, spec, batch_size):
        txns = build_txns(spec)
        db = Database(cc="dr", processing_batch_size=batch_size)
        report = db.run(txns)

        elle = ElleChecker().check(history_from_execution(report, txns))
        assert elle.serializable, (elle.anomalies, elle.inconsistencies)

        polygraph = check_serializable(RWHistory.from_execution(report, txns))
        assert polygraph.serializable, polygraph.reason

        assert replay_in_schedule_order(report, txns)

    @given(workload_spec, st.integers(min_value=1, max_value=4))
    @settings(max_examples=30, deadline=None)
    def test_2pl_certified_by_all_oracles(self, spec, threads):
        txns = build_txns(spec)
        db = Database(cc="2pl", num_threads=threads)
        report = db.run(txns)

        elle = ElleChecker().check(history_from_execution(report, txns))
        assert elle.serializable, (elle.anomalies, elle.inconsistencies)

        polygraph = check_serializable(RWHistory.from_execution(report, txns))
        assert polygraph.serializable, polygraph.reason

        assert replay_in_schedule_order(report, txns)
