"""Integration tests for crash-safe durability: WAL, checkpoints, recover().

The unmarked tests are acceptance-critical and run in tier-1: a durable
session survives a mid-run crash plus a torn WAL tail, recovery's rebuilt
authenticated-dictionary digest equals the journaled client digest, and no
acknowledged batch is ever lost under ``fsync="always"``.

The exhaustive crash-stage × corruption matrix carries
``@pytest.mark.crash`` and runs in its own CI job (``pytest -m crash``);
the default ``addopts`` excludes the marker.
"""

from __future__ import annotations

import os

import pytest

from repro.core import DurabilityConfig, LitmusConfig, LitmusSession
from repro.db.wal import list_segments, segment_records
from repro.db.wal.records import encode_record
from repro.errors import (
    CheckpointError,
    ServerDesyncError,
    SimulatedCrash,
    WalError,
)
from repro.faults import (
    BitRotSegment,
    CrashPoint,
    FaultPlan,
    TornWrite,
    TruncateSegment,
)
from repro.obs.metrics import MetricsRegistry

from .test_fault_recovery import CONFIG, NUM_ACCOUNTS, TRANSFER

CRASH_STAGES = (
    "before-log",
    "after-log",
    "after-checkpoint-temp",
    "after-checkpoint",
)
CORRUPTIONS = {
    "none": lambda: None,
    "torn_write": TornWrite,
    "truncate": TruncateSegment,
    "bit_rot": BitRotSegment,
}


def _durable_session(group, directory, plan=None, registry=None, **kwargs):
    return LitmusSession.create(
        initial={("acct", i): 100 for i in range(NUM_ACCOUNTS)},
        config=CONFIG,
        group=group,
        registry=registry,
        fault_plan=plan,
        durability=DurabilityConfig(directory=str(directory), **kwargs),
        checkpoint_every=2,
    )


def _run_until_crash(session, batches=5):
    """Flush one-transaction batches until the injected crash fires.

    Returns the digests of every *acknowledged* batch (flush returned).
    """
    acked = []
    with pytest.raises(SimulatedCrash):
        for i in range(batches):
            session.submit(
                f"user{i % 3}", TRANSFER, src=i % 4, dst=(i + 1) % 4, amount=5
            )
            assert session.flush().accepted
            acked.append(session.digest)
    return acked


def _assert_recovered(recovered, acked):
    """The acceptance predicate: nothing acknowledged was lost, the rebuilt
    digest is the journaled one, and the deployment stays live."""
    report = recovered.recovery_report
    assert report is not None
    assert report.last_seq >= len(acked), "acknowledged batch lost"
    recovered_digests = [e.digest for e in recovered.digest_log.entries()]
    for digest in acked:
        assert digest in recovered_digests, "acknowledged digest missing"
    assert recovered.digest == recovered.server.digest
    # liveness: the recovered session keeps verifying batches
    recovered.submit("alice", TRANSFER, src=0, dst=1, amount=1)
    assert recovered.flush().accepted
    recovered.close()


class TestAcceptance:
    """Tier-1 (unmarked): the core crash-recovery guarantees."""

    def test_clean_restart_reproduces_the_digest(self, group, tmp_path):
        session = _durable_session(group, tmp_path)
        for i in range(3):
            session.submit("alice", TRANSFER, src=i, dst=i + 1, amount=5)
            assert session.flush().accepted
        digest = session.digest
        session.close()
        recovered = LitmusSession.recover(str(tmp_path), [TRANSFER], group=group)
        assert recovered.digest == digest
        assert recovered.recovery_report.duration_seconds > 0
        _assert_recovered(recovered, [digest])

    def test_crash_after_log_with_torn_tail(self, group, tmp_path):
        registry = MetricsRegistry()
        plan = FaultPlan(CrashPoint("after-log", skip=2), seed=7)
        session = _durable_session(group, tmp_path, plan=plan, registry=registry)
        acked = _run_until_crash(session)
        assert len(acked) == 2
        TornWrite().apply(str(tmp_path))
        recovered = LitmusSession.recover(
            str(tmp_path), [TRANSFER], group=group, registry=registry
        )
        assert recovered.recovery_report.truncations == 1
        assert registry.counter("wal.torn_tail_truncated").value == 1
        # the torn record was never acknowledged, so truncating it is lossless
        assert recovered.digest == acked[-1]
        _assert_recovered(recovered, acked)

    def test_fresh_directory_guard(self, group, tmp_path):
        session = _durable_session(group, tmp_path)
        session.close()
        with pytest.raises(WalError, match="recover"):
            _durable_session(group, tmp_path)

    def test_recover_empty_directory_raises(self, tmp_path):
        with pytest.raises(CheckpointError):
            LitmusSession.recover(str(tmp_path), [TRANSFER])

    def test_desync_detected_on_forged_digest(self, group, tmp_path):
        session = _durable_session(group, tmp_path)
        for i in range(3):
            session.submit("alice", TRANSFER, src=i, dst=i + 1, amount=5)
            assert session.flush().accepted
        session.close()
        # Forge the last record: valid framing, journaled digest off by one.
        # Recovery must refuse the history rather than trust it.
        path = list_segments(str(tmp_path))[-1]
        records, _intact, _status = segment_records(path)
        last = records[-1]
        with open(path, "r+b") as handle:
            handle.truncate(last.offset)
            handle.seek(0, os.SEEK_END)
            handle.write(
                encode_record(last.seq, last.digest ^ 1, last.command_log)
            )
        with pytest.raises(ServerDesyncError):
            LitmusSession.recover(str(tmp_path), [TRANSFER], group=group)

    def test_tampered_checkpoint_falls_back_to_older(self, group, tmp_path):
        # Crash right after the periodic checkpoint's rename: the new
        # checkpoint exists but the covered segments were NOT retired.
        # Rotting that newest checkpoint must degrade recovery to the
        # previous one plus WAL replay — with zero loss.
        plan = FaultPlan(CrashPoint("after-checkpoint", skip=1), seed=7)
        session = _durable_session(group, tmp_path, plan=plan)
        acked = _run_until_crash(session)
        # The crash fired inside batch 2's periodic checkpoint, before its
        # flush returned: batch 2 is durable (WAL + checkpoint) but only
        # batch 1 was acknowledged.
        assert len(acked) == 1
        newest = max(
            (p for p in os.listdir(str(tmp_path)) if p.endswith(".ckpt"))
        )
        with open(os.path.join(str(tmp_path), newest), "r+b") as handle:
            handle.seek(40)
            byte = handle.read(1)
            handle.seek(40)
            handle.write(bytes([byte[0] ^ 0x08]))
        recovered = LitmusSession.recover(str(tmp_path), [TRANSFER], group=group)
        assert recovered.recovery_report.checkpoint_seq == 0
        assert recovered.recovery_report.replayed_batches == 2
        _assert_recovered(recovered, acked)

    def test_session_resumes_sequence_and_txn_ids(self, group, tmp_path):
        session = _durable_session(group, tmp_path)
        session.submit("alice", TRANSFER, src=0, dst=1, amount=5)
        assert session.flush().accepted
        next_id = session._next_id
        session.close()
        recovered = LitmusSession.recover(str(tmp_path), [TRANSFER], group=group)
        assert recovered._next_id >= next_id
        ticket = recovered.submit("bob", TRANSFER, src=2, dst=3, amount=5)
        assert ticket.txn_id >= next_id
        assert recovered.flush().accepted
        recovered.close()

    def test_recovery_report_surfaces_the_checkpoint_decision(
        self, group, tmp_path
    ):
        """A checkpoint fallback is an observable event, not a silent one:
        the report names what loaded, whether it was the mirror, and every
        newer candidate rejected (with the reason)."""
        from repro.db.wal import list_checkpoints
        from repro.faults import CheckpointRot

        session = _durable_session(group, tmp_path)
        for i in range(4):  # checkpoint_every=2: at least one checkpoint
            session.submit("alice", TRANSFER, src=i, dst=i + 1, amount=5)
            assert session.flush().accepted
        session.close()

        recovered = LitmusSession.recover(str(tmp_path), [TRANSFER], group=group)
        report = recovered.recovery_report
        assert report.checkpoint_path == list_checkpoints(str(tmp_path))[0]
        assert not report.checkpoint_from_mirror
        assert report.checkpoint_rejected == ()
        recovered.close()

        rotted = CheckpointRot().apply(str(tmp_path))
        recovered = LitmusSession.recover(str(tmp_path), [TRANSFER], group=group)
        report = recovered.recovery_report
        assert report.checkpoint_from_mirror
        assert report.checkpoint_path == rotted + ".mirror"
        assert len(report.checkpoint_rejected) == 1
        assert os.path.basename(rotted) in report.checkpoint_rejected[0]
        _assert_recovered(recovered, [])

    def test_sharded_recovery_reports_carry_the_decision_per_shard(
        self, group, tmp_path
    ):
        from repro.core.sharding import ShardedSession
        from repro.faults import CheckpointRot

        session = ShardedSession.create(
            initial={("acct", i): 100 for i in range(NUM_ACCOUNTS)},
            config=CONFIG,
            group=group,
            num_shards=2,
            durability=DurabilityConfig(directory=str(tmp_path)),
            checkpoint_every=1,
        )
        for i in range(3):
            session.submit(
                f"user{i}", TRANSFER, src=i, dst=(i + 1) % NUM_ACCOUNTS, amount=5
            )
            session.flush()
        session.close()
        rotted = CheckpointRot().apply(str(tmp_path / "shard-01"))

        recovered = ShardedSession.recover(
            str(tmp_path), [TRANSFER], group=group
        )
        by_mirror = {
            r.checkpoint_from_mirror: r for r in recovered.recovery_reports
        }
        assert set(by_mirror) == {False, True}
        assert by_mirror[True].checkpoint_path == rotted + ".mirror"
        assert os.path.basename(rotted) in by_mirror[True].checkpoint_rejected[0]
        assert by_mirror[False].checkpoint_rejected == ()
        recovered.close()


@pytest.mark.crash
class TestCrashMatrix:
    """Every crash stage × every at-rest corruption, fsync=always: recovery
    restores a state whose rebuilt digest equals the journaled one, with
    zero acknowledged-but-lost batches, and torn tails never raise."""

    @pytest.mark.parametrize("stage", CRASH_STAGES)
    @pytest.mark.parametrize("corruption", sorted(CORRUPTIONS))
    def test_crash_then_corrupt_then_recover(
        self, group, tmp_path, stage, corruption
    ):
        skip = 1 if stage.startswith("after-checkpoint") else 2
        plan = FaultPlan(CrashPoint(stage, skip=skip), seed=11)
        session = _durable_session(group, tmp_path, plan=plan)
        acked = _run_until_crash(session)
        assert acked, "no batch was acknowledged before the crash"
        damage = CORRUPTIONS[corruption]()
        if damage is not None:
            try:
                damage.apply(str(tmp_path))
            except WalError:
                # the crash stage may have left no WAL records to damage
                # (e.g. right after a checkpoint retired every segment)
                pass
        recovered = LitmusSession.recover(str(tmp_path), [TRANSFER], group=group)
        _assert_recovered(recovered, acked)

    @pytest.mark.parametrize("fsync", ["batch", "never"])
    def test_relaxed_fsync_still_recovers_consistently(
        self, group, tmp_path, fsync
    ):
        """Relaxed policies may lose tail batches but never consistency:
        whatever prefix survives, the digest cross-check still holds."""
        plan = FaultPlan(CrashPoint("after-log", skip=3), seed=3)
        session = _durable_session(
            group, tmp_path, plan=plan, fsync=fsync, sync_every=2
        )
        _run_until_crash(session)
        TruncateSegment(records=1).apply(str(tmp_path))
        recovered = LitmusSession.recover(str(tmp_path), [TRANSFER], group=group)
        assert recovered.digest == recovered.server.digest
        recovered.submit("alice", TRANSFER, src=0, dst=1, amount=1)
        assert recovered.flush().accepted
        recovered.close()
