"""Adversarial tests against the *concurrent* proving pipeline.

A malicious (or buggy) prover worker in the pool could hand back a
tampered `_PieceProof` — wrong proof object, forged public values, or a
cooked end digest.  These tests take an honest response produced with
``num_provers > 1`` and mutate exactly one piece the way such a worker
would, asserting the client rejects every variant: parallel dispatch must
not open any soundness hole the serial path didn't have.

Mutation style follows ``examples/attack_gallery.py`` (``dataclasses.replace``
on the frozen protocol types).
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core import LitmusClient, LitmusConfig, LitmusServer

from ..db.helpers import increment, transfer

NUM_PROVERS = 4  # every response under test comes out of a real worker pool


@pytest.fixture()
def pipeline(group):
    """An honest concurrent run: (txns, response, fresh verifying client)."""
    config = LitmusConfig(
        cc="dr",
        processing_batch_size=2,
        batches_per_piece=1,
        prime_bits=64,
        num_provers=NUM_PROVERS,
    )
    server = LitmusServer(initial={}, config=config, group=group)
    client = LitmusClient(group, server.digest, config=config)
    txns = [increment(i, i) for i in range(1, 9)]
    response = server.execute_batch(txns)
    assert len(response.pieces) >= 4, "need several pieces in flight at once"
    return txns, response, client


def replace_piece(response, index, **changes):
    pieces = list(response.pieces)
    pieces[index] = dataclasses.replace(pieces[index], **changes)
    return dataclasses.replace(response, pieces=tuple(pieces))


def assert_rejected(client, txns, forged, label):
    verdict = client.verify_response(txns, forged)
    assert not verdict.accepted, f"{label}: forged concurrent response accepted"
    return verdict


class TestHonestBaseline:
    def test_honest_concurrent_response_accepted(self, pipeline):
        txns, response, client = pipeline
        verdict = client.verify_response(txns, response)
        assert verdict.accepted, verdict.reason


class TestTamperedProof:
    def test_swapped_proof_from_sibling_piece(self, pipeline):
        txns, response, client = pipeline
        forged = replace_piece(response, 1, proof=response.pieces[2].proof)
        assert_rejected(client, txns, forged, "swapped proof")

    def test_proof_paired_with_foreign_verification_key(self, pipeline):
        txns, response, client = pipeline
        # A worker returning a sibling piece's (key, proof) pair wholesale:
        # the proof verifies under that key, but certifies the wrong
        # statement for this slot.
        foreign = response.pieces[2]
        forged = replace_piece(
            response,
            1,
            proof=foreign.proof,
            verification_key=foreign.verification_key,
        )
        assert_rejected(client, txns, forged, "foreign key+proof pair")


class TestForgedPublicValues:
    def test_mutated_public_values(self, pipeline):
        txns, response, client = pipeline
        piece = response.pieces[1]
        cooked = (piece.public_values[0] ^ 1,) + tuple(piece.public_values[1:])
        forged = replace_piece(response, 1, public_values=cooked)
        assert_rejected(client, txns, forged, "mutated public values")

    def test_forged_outputs_with_consistent_public_values(self, pipeline):
        txns, response, client = pipeline
        # The classic attack-gallery forgery, now against a concurrent run:
        # lie about outputs while leaving everything else untouched.
        piece = response.pieces[0]
        forged = replace_piece(
            response,
            0,
            outputs=tuple((txn_id, (777,)) for txn_id, _v in piece.outputs),
        )
        assert_rejected(client, txns, forged, "forged outputs")


class TestForgedDigestChain:
    def test_forged_end_digest_mid_chain(self, pipeline):
        txns, response, client = pipeline
        middle = len(response.pieces) // 2
        piece = response.pieces[middle]
        forged = replace_piece(response, middle, end_digest=piece.end_digest ^ 1)
        assert_rejected(client, txns, forged, "forged mid-chain end digest")

    def test_forged_end_digest_last_piece_with_matching_final(self, pipeline):
        txns, response, client = pipeline
        last = len(response.pieces) - 1
        cooked = response.pieces[last].end_digest ^ 1
        forged = dataclasses.replace(
            replace_piece(response, last, end_digest=cooked),
            final_digest=cooked,
        )
        assert_rejected(client, txns, forged, "forged tail digest + final")

    def test_spliced_out_piece_with_repaired_chain(self, pipeline):
        txns, response, client = pipeline
        # Drop piece 1 and re-point piece 2's start at piece 0's end so the
        # digest chain *looks* contiguous; coverage/statement checks must
        # still catch it.
        kept = [response.pieces[0]] + [
            dataclasses.replace(p, piece_index=i + 1)
            for i, p in enumerate(response.pieces[2:])
        ]
        kept[1] = dataclasses.replace(
            kept[1], start_digest=response.pieces[0].end_digest
        )
        forged = dataclasses.replace(response, pieces=tuple(kept))
        assert_rejected(client, txns, forged, "spliced digest chain")


class TestCrossBatchReplay:
    def test_piece_replayed_from_previous_concurrent_batch(self, group):
        config = LitmusConfig(
            cc="dr",
            processing_batch_size=2,
            batches_per_piece=1,
            prime_bits=64,
            num_provers=NUM_PROVERS,
        )
        server = LitmusServer(
            initial={("acct", i): 100 for i in range(4)}, config=config, group=group
        )
        client = LitmusClient(group, server.digest, config=config)
        first = [transfer(i, i % 4, (i + 1) % 4, 5) for i in range(1, 9)]
        old = server.execute_batch(first)
        assert client.verify_response(first, old).accepted
        second = [transfer(i, i % 4, (i + 1) % 4, 5) for i in range(9, 17)]
        fresh = server.execute_batch(second)
        # Substitute one stale (previously valid!) piece into the new batch.
        forged = replace_piece(
            fresh,
            0,
            proof=old.pieces[0].proof,
            verification_key=old.pieces[0].verification_key,
            start_digest=old.pieces[0].start_digest,
            end_digest=old.pieces[0].end_digest,
            public_values=old.pieces[0].public_values,
        )
        assert_rejected(client, second, forged, "stale piece replay")
